// Package blockchain implements the private proof-of-work smart-contract
// blockchain at the heart of DRAMS (paper §II). It provides:
//
//   - signed transactions carrying contract calls, with per-sender nonces
//     for replay protection and a permissioned identity allowlist (outsiders
//     cannot forge log entries — attack A8);
//   - blocks mined with a tunable leading-zero-bits difficulty, exactly the
//     "private blockchain where all PoW parameters can be dynamically tuned"
//     of §III, including optional automatic retargeting;
//   - a multi-node network: transaction/block gossip over any
//     transport.Transport backend (netsim in-process, TCP across), orphan
//     resolution, heaviest-work fork choice with deterministic state replay
//     on reorganisation;
//   - contract execution at block application, with events published to
//     off-chain subscribers (the Logging Interfaces) once a block joins the
//     best chain.
package blockchain

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"drams/internal/contract"
	"drams/internal/crypto"
	"drams/internal/merkle"
)

// Validation errors.
var (
	ErrUnknownIdentity = errors.New("blockchain: transaction from unknown identity")
	ErrBadSignature    = errors.New("blockchain: invalid transaction signature")
	ErrBadPoW          = errors.New("blockchain: block hash does not meet difficulty")
	ErrBadMerkleRoot   = errors.New("blockchain: merkle root does not match transactions")
	ErrOrphanBlock     = errors.New("blockchain: parent block unknown")
	ErrKnownBlock      = errors.New("blockchain: block already known")
	ErrBadHeight       = errors.New("blockchain: block height does not follow parent")
	ErrBadNonce        = errors.New("blockchain: transaction nonce out of order")
	ErrKnownTx         = errors.New("blockchain: transaction already known")
	ErrBadDifficulty   = errors.New("blockchain: block difficulty does not match schedule")
	ErrTxNotFound      = errors.New("blockchain: transaction not found")
)

// Transaction is a signed contract call.
type Transaction struct {
	From      string        `json:"from"`
	Nonce     uint64        `json:"nonce"`
	Call      contract.Call `json:"call"`
	PubKey    []byte        `json:"pubKey"`
	Signature []byte        `json:"signature,omitempty"`
}

// signingBytes is the canonical byte encoding covered by the signature.
func (tx *Transaction) signingBytes() []byte {
	var nonce [8]byte
	binary.BigEndian.PutUint64(nonce[:], tx.Nonce)
	return crypto.SumAll([]byte(tx.From), nonce[:], tx.Call.Encode(), tx.PubKey).Bytes()
}

// ID returns the transaction digest (covers the signature, so two distinct
// signatures over the same payload are distinct transactions; the nonce
// check still prevents both from executing).
func (tx *Transaction) ID() crypto.Digest {
	return crypto.SumAll(tx.signingBytes(), tx.Signature)
}

// Sign populates PubKey and Signature using id. From must equal id's name.
func (tx *Transaction) Sign(id *crypto.Identity) error {
	if tx.From != id.Name() {
		return fmt.Errorf("blockchain: sign: From %q does not match identity %q", tx.From, id.Name())
	}
	pub := id.Public()
	tx.PubKey = append([]byte(nil), pub.Key...)
	tx.Signature = id.Sign(tx.signingBytes())
	return nil
}

// NewTransaction builds and signs a transaction.
func NewTransaction(id *crypto.Identity, nonce uint64, call contract.Call) (Transaction, error) {
	tx := Transaction{From: id.Name(), Nonce: nonce, Call: call}
	if err := tx.Sign(id); err != nil {
		return Transaction{}, err
	}
	return tx, nil
}

// IdentityRegistry is the permissioned membership of the private chain: the
// set of component identities allowed to submit transactions.
type IdentityRegistry struct {
	mu     sync.RWMutex
	byName map[string]crypto.PublicIdentity
	gen    atomic.Uint64
}

// NewIdentityRegistry builds a registry from the genesis allowlist.
func NewIdentityRegistry(ids ...crypto.PublicIdentity) *IdentityRegistry {
	r := &IdentityRegistry{byName: make(map[string]crypto.PublicIdentity, len(ids))}
	for _, id := range ids {
		r.byName[id.Name] = id
	}
	return r
}

// Add registers an identity (federation membership change). It bumps the
// registry generation so verified-transaction caches keyed to the previous
// membership are invalidated.
func (r *IdentityRegistry) Add(id crypto.PublicIdentity) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.byName[id.Name] = id
	r.gen.Add(1)
}

// Generation returns a counter that changes whenever the membership does.
// TxVerifier tags cached verifications with it: a cached "valid" result is
// only trusted while the membership that produced it is still current.
func (r *IdentityRegistry) Generation() uint64 { return r.gen.Load() }

// Lookup returns the identity registered under name.
func (r *IdentityRegistry) Lookup(name string) (crypto.PublicIdentity, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	id, ok := r.byName[name]
	return id, ok
}

// Len returns the number of registered identities.
func (r *IdentityRegistry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byName)
}

// sigCheck performs the cheap registry checks (membership, registered-key
// match) and returns the remaining ed25519 verification as a job that
// TxVerifier can fan out across its worker pool.
func (r *IdentityRegistry) sigCheck(tx *Transaction) (crypto.SigCheck, error) {
	reg, ok := r.Lookup(tx.From)
	if !ok {
		return crypto.SigCheck{}, fmt.Errorf("%w: %q", ErrUnknownIdentity, tx.From)
	}
	if !crypto.ConstantTimeEqual(reg.Key, tx.PubKey) {
		return crypto.SigCheck{}, fmt.Errorf("%w: public key does not match registered identity %q", ErrBadSignature, tx.From)
	}
	return crypto.SigCheck{Key: reg.Key, Msg: tx.signingBytes(), Sig: tx.Signature}, nil
}

// VerifyTx checks a transaction's signature against the registry. The public
// key embedded in the transaction must match the registered key for the
// claimed sender — a forged key is rejected even if the signature verifies.
func (r *IdentityRegistry) VerifyTx(tx *Transaction) error {
	check, err := r.sigCheck(tx)
	if err != nil {
		return err
	}
	if !check.Verify() {
		return fmt.Errorf("%w: from %q", ErrBadSignature, tx.From)
	}
	return nil
}

// BlockHeader is the mined portion of a block.
type BlockHeader struct {
	Height       uint64        `json:"height"`
	PrevHash     crypto.Digest `json:"prevHash"`
	MerkleRoot   crypto.Digest `json:"merkleRoot"`
	TimeUnixNano int64         `json:"time"`
	Difficulty   uint8         `json:"difficulty"`
	Nonce        uint64        `json:"nonce"`
	Miner        string        `json:"miner"`
}

// Time returns the header timestamp as a time.Time.
func (h *BlockHeader) Time() time.Time { return time.Unix(0, h.TimeUnixNano) }

// Hash computes the header digest using a fixed-width binary encoding. The
// scratch buffer is pooled: mining recomputes this hash per nonce attempt,
// so a fresh allocation each call would dominate the mining profile.
func (h *BlockHeader) Hash() crypto.Digest {
	bp := encodePool.Get().(*[]byte)
	buf := (*bp)[:0]
	buf = binary.BigEndian.AppendUint64(buf, h.Height)
	buf = append(buf, h.PrevHash[:]...)
	buf = append(buf, h.MerkleRoot[:]...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(h.TimeUnixNano))
	buf = append(buf, h.Difficulty)
	buf = binary.BigEndian.AppendUint64(buf, h.Nonce)
	buf = append(buf, h.Miner...)
	d := crypto.Sum(buf)
	*bp = buf
	encodePool.Put(bp)
	return d
}

// MeetsDifficulty reports whether the header hash has at least Difficulty
// leading zero bits.
func (h *BlockHeader) MeetsDifficulty() bool {
	hash := h.Hash()
	return hash.LeadingZeroBits() >= int(h.Difficulty)
}

// Block is a header plus its transactions.
type Block struct {
	Header BlockHeader   `json:"header"`
	Txs    []Transaction `json:"txs"`
}

// Hash returns the block's identity (the header hash).
func (b *Block) Hash() crypto.Digest { return b.Header.Hash() }

// ComputeMerkleRoot derives the Merkle root over the block's transaction
// IDs; the zero digest for an empty block.
func ComputeMerkleRoot(txs []Transaction) crypto.Digest {
	if len(txs) == 0 {
		return crypto.Digest{}
	}
	hashes := make([]crypto.Digest, len(txs))
	for i := range txs {
		hashes[i] = txs[i].ID()
	}
	return merkle.RootOfHashes(hashes)
}

// Encode serialises the block in the binary wire format (see codec.go) for
// gossip and persistence. The output is exactly sized: one allocation.
func (b *Block) Encode() []byte {
	out, err := AppendBlock(make([]byte, 0, blockEncodedLen(b)), b)
	if err != nil {
		panic(fmt.Sprintf("blockchain: encode block: %v", err))
	}
	return out
}

// DecodeBlock parses a gossiped or persisted block in either wire format:
// binary (leading version byte) or legacy JSON (leading '{').
func DecodeBlock(data []byte) (*Block, error) {
	if len(data) == 0 {
		return nil, errors.New("blockchain: decode block: empty input")
	}
	switch data[0] {
	case codecVersion:
		return decodeBlockBinary(data)
	case '{':
		var b Block
		if err := json.Unmarshal(data, &b); err != nil {
			return nil, fmt.Errorf("blockchain: decode block: %w", err)
		}
		return &b, nil
	default:
		return nil, fmt.Errorf("blockchain: decode block: unknown format byte 0x%02x", data[0])
	}
}

// EncodeTx serialises a transaction in the binary wire format for gossip.
func EncodeTx(tx Transaction) []byte {
	out, err := AppendTx(make([]byte, 0, 1+txEncodedLen(&tx)), &tx)
	if err != nil {
		panic(fmt.Sprintf("blockchain: encode tx: %v", err))
	}
	return out
}

// DecodeTx parses a gossiped transaction in either wire format.
func DecodeTx(data []byte) (Transaction, error) {
	if len(data) == 0 {
		return Transaction{}, errors.New("blockchain: decode tx: empty input")
	}
	switch data[0] {
	case codecVersion:
		return decodeTxBinary(data)
	case '{':
		var tx Transaction
		if err := json.Unmarshal(data, &tx); err != nil {
			return Transaction{}, fmt.Errorf("blockchain: decode tx: %w", err)
		}
		return tx, nil
	default:
		return Transaction{}, fmt.Errorf("blockchain: decode tx: unknown format byte 0x%02x", data[0])
	}
}

// Receipt records the outcome of executing a transaction on the best chain.
type Receipt struct {
	TxID   crypto.Digest    `json:"txId"`
	Height uint64           `json:"height"`
	OK     bool             `json:"ok"`
	Err    string           `json:"err,omitempty"`
	Events []contract.Event `json:"events,omitempty"`
}
