package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"regexp"
	"strconv"
	"strings"

	"drams/internal/metrics"
)

// WriteExposition renders samples in Prometheus text exposition format
// (version 0.0.4): one # HELP and # TYPE line per metric family followed
// by its series. Histogram samples become native prometheus histograms —
// cumulative <family>_bucket{le="..."} series (with a terminal le="+Inf"),
// <family>_sum and <family>_count. Samples must already be sorted so
// series of one family are contiguous (Gather guarantees this).
func WriteExposition(w io.Writer, samples []metrics.Sample) error {
	var prevFamily string
	for _, s := range samples {
		family, labels := metrics.SplitSeries(s.Name)
		if family != prevFamily {
			if s.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", family, escapeHelp(s.Help)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", family, s.Kind); err != nil {
				return err
			}
			prevFamily = family
		}
		switch s.Kind {
		case metrics.KindHistogram:
			if err := writeHistogram(w, family, labels, s.Hist); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s %d\n", s.Name, s.Value); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistogram emits the cumulative bucket/sum/count series for one
// histogram series (labels is the series' own label suffix, "{...}" or "").
func writeHistogram(w io.Writer, family, labels string, ex *metrics.HistExport) error {
	if ex == nil {
		ex = &metrics.HistExport{}
	}
	for _, b := range ex.Buckets {
		le := strconv.FormatFloat(b.LE, 'g', -1, 64)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", family, mergeLabel(labels, "le", le), b.Count); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", family, mergeLabel(labels, "le", "+Inf"), ex.Count); err != nil {
		return err
	}
	sum := ex.Sum
	if math.IsNaN(sum) || math.IsInf(sum, 0) {
		sum = 0
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", family, labels, strconv.FormatFloat(sum, 'g', -1, 64)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", family, labels, ex.Count)
	return err
}

// mergeLabel appends key="value" to an existing label suffix.
func mergeLabel(labels, key, value string) string {
	pair := key + `="` + value + `"`
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

// escapeHelp escapes backslashes and newlines per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// ParseValues is the scrape side of WriteExposition: it reads text
// exposition and returns a flat series→value map. Histogram families
// appear through their derived _bucket/_sum/_count series. Comment and
// blank lines are skipped; a malformed sample line is an error.
func ParseValues(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// The series name ends at the closing '}' when labelled (label
		// values may contain spaces), else at the first space.
		var name, rest string
		if i := strings.LastIndexByte(line, '}'); i >= 0 {
			name, rest = line[:i+1], strings.TrimSpace(line[i+1:])
		} else if i := strings.IndexByte(line, ' '); i >= 0 {
			name, rest = line[:i], strings.TrimSpace(line[i+1:])
		} else {
			return nil, fmt.Errorf("obs: malformed exposition line %q", line)
		}
		if f := strings.Fields(rest); len(f) > 0 {
			rest = f[0] // drop an optional trailing timestamp
		}
		v, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			return nil, fmt.Errorf("obs: exposition line %q: %w", line, err)
		}
		out[name] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// FlattenValues reduces a sample set to the flat series→value map a
// scraper would reconstruct from the rendered exposition (loadgen embeds
// fleet snapshots in BENCH reports in this form).
func FlattenValues(samples []metrics.Sample) map[string]float64 {
	var buf bytes.Buffer
	if err := WriteExposition(&buf, samples); err != nil {
		return nil
	}
	out, err := ParseValues(&buf)
	if err != nil {
		return nil
	}
	return out
}

var (
	familyRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelsRe = regexp.MustCompile(`^\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*\}$`)
)

// Lint applies promtool-check-metrics-style rules to a sample set:
// valid metric and label names, help text present for every family,
// counters suffixed _total, histograms/gauges not pretending to be
// counters, and no family exposed under two different kinds. A clean
// fleet registry must return nil.
func Lint(samples []metrics.Sample) []error {
	var errs []error
	kinds := make(map[string]metrics.Kind)
	for _, s := range samples {
		family, labels := metrics.SplitSeries(s.Name)
		if !familyRe.MatchString(family) {
			errs = append(errs, fmt.Errorf("%s: invalid metric name", s.Name))
		}
		if labels != "" && !labelsRe.MatchString(labels) {
			errs = append(errs, fmt.Errorf("%s: malformed label suffix %q", s.Name, labels))
		}
		if s.Help == "" {
			errs = append(errs, fmt.Errorf("%s: no help text", family))
		}
		if s.Kind == metrics.KindCounter && !strings.HasSuffix(family, "_total") {
			errs = append(errs, fmt.Errorf("%s: counter not suffixed _total", family))
		}
		if s.Kind != metrics.KindCounter && strings.HasSuffix(family, "_total") {
			errs = append(errs, fmt.Errorf("%s: non-counter suffixed _total", family))
		}
		if prev, ok := kinds[family]; ok && prev != s.Kind {
			errs = append(errs, fmt.Errorf("%s: exposed as both %s and %s", family, prev, s.Kind))
		}
		kinds[family] = s.Kind
	}
	return errs
}
