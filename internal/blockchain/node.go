package blockchain

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"drams/internal/clock"
	"drams/internal/contract"
	"drams/internal/crypto"
	"drams/internal/metrics"
	"drams/internal/transport"
)

// Message kinds used on the wire.
const (
	kindTx       = "bc.tx"
	kindBlock    = "bc.block"
	kindGetBlock = "bc.getblock"
	kindHead     = "bc.head"
	kindSubmit   = "bc.submit"
	kindHello    = "bc.hello"
)

// ErrStopped is returned by node operations after Stop.
var ErrStopped = errors.New("blockchain: node stopped")

// NodeConfig configures one chain node.
type NodeConfig struct {
	// Name is the node's network address and miner label.
	Name string
	// Chain holds the consensus parameters (must match across the
	// federation).
	Chain Config
	// Network connects the node to its peers. Any transport backend works:
	// netsim.Network in-process, transport/tcp across processes.
	Network transport.Transport
	// Peers are the addresses gossip goes to. Empty means "discover chain
	// peers dynamically": the node announces itself with a bc.hello
	// handshake and gossips only to nodes that answered, so PEP/PDP/logger
	// endpoints sharing the transport never see bc.* frames.
	Peers []string
	// Mine enables the mining loop.
	Mine bool
	// EmptyBlockInterval makes the miner produce empty blocks at this
	// cadence when the mempool is idle, so block hooks (e.g. the log-match
	// timeout check M3) keep advancing. Zero disables empty blocks.
	EmptyBlockInterval time.Duration
	// MempoolSize bounds pending transactions.
	MempoolSize int
	// SyncDepth bounds how many ancestors are fetched when resolving an
	// orphan block (default 10 000).
	SyncDepth int
	// RebroadcastInterval re-gossips pending transactions periodically so
	// that txs stranded by a partition reach the block producers after
	// healing (also closes per-sender nonce gaps). Default 250ms; negative
	// disables.
	RebroadcastInterval time.Duration
	// IngestBatch caps how many gossiped transactions are admitted per
	// signature-verification batch (default 128). Ignored when the chain
	// is configured with SequentialVerify, which keeps the historic
	// verify-inline-per-message behaviour.
	IngestBatch int
}

// EventNotification delivers the events of one applied block to a
// subscriber.
type EventNotification struct {
	Height uint64
	Events []contract.Event
}

// NodeStats are observability counters for experiments.
type NodeStats struct {
	BlocksMined     int64
	BlocksAccepted  int64
	BlocksRejected  int64
	TxsSubmitted    int64
	EventsDropped   int64
	MiningCancelled int64
	OrphansResolved int64
	IngestBatches   int64
	IngestDropped   int64
	// Verifier reports the shared signature-verification pipeline counters
	// (mempool admission + block validation).
	Verifier VerifierStats
}

// Node is one participant of the private chain: chain storage, mempool,
// gossip, and optionally a miner.
type Node struct {
	cfg   NodeConfig
	chain *Chain
	pool  *Mempool
	ep    transport.Endpoint
	clk   clock.Clock

	peerMu    sync.Mutex
	chainPeer map[string]struct{} // discovered via bc.hello (Peers empty)
	helloed   int                 // address count at the last hello broadcast

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
	newTx    chan struct{}
	ingest   chan inboundTx // nil when SequentialVerify

	subMu  sync.Mutex
	subs   map[int]chan EventNotification
	subSeq int

	mined     metrics.Counter
	accepted  metrics.Counter
	rejected  metrics.Counter
	submitted metrics.Counter
	evDropped metrics.Counter
	cancelled metrics.Counter
	orphans   metrics.Counter
	inBatches metrics.Counter
	inDropped metrics.Counter
}

// inboundTx is a gossiped transaction queued for batched admission.
type inboundTx struct {
	tx   Transaction
	raw  []byte // original wire payload, re-gossiped on acceptance
	from string
}

// NewNode constructs (but does not start) a node.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Name == "" {
		return nil, errors.New("blockchain: node needs a name")
	}
	if cfg.Network == nil {
		return nil, errors.New("blockchain: node needs a network")
	}
	if cfg.SyncDepth <= 0 {
		cfg.SyncDepth = 10000
	}
	if cfg.IngestBatch <= 0 {
		cfg.IngestBatch = 128
	}
	ep, err := cfg.Network.Register(cfg.Name)
	if err != nil {
		return nil, fmt.Errorf("blockchain: register node %q: %w", cfg.Name, err)
	}
	n := &Node{
		cfg:       cfg,
		chain:     NewChain(cfg.Chain),
		pool:      NewMempool(cfg.MempoolSize),
		ep:        ep,
		clk:       cfg.Chain.withDefaults().Clock,
		stop:      make(chan struct{}),
		newTx:     make(chan struct{}, 1),
		subs:      make(map[int]chan EventNotification),
		chainPeer: make(map[string]struct{}),
	}
	n.chain.SetEventSink(n.fanout)
	if !cfg.Chain.SequentialVerify {
		// Gossip handlers are active from construction, so the batched
		// admission loop must be too (Stop terminates it).
		n.ingest = make(chan inboundTx, 4*cfg.IngestBatch)
		n.wg.Add(1)
		go n.ingestLoop()
	}
	ep.OnMessage(kindTx, n.handleTxGossip)
	ep.OnMessage(kindBlock, n.handleBlockGossip)
	ep.OnMessage(kindHello, n.handleHello)
	ep.OnCall(kindGetBlock, n.handleGetBlock)
	ep.OnCall(kindHead, n.handleHead)
	ep.OnCall(kindSubmit, n.handleSubmit)
	if len(cfg.Peers) == 0 {
		// No static peer table: announce ourselves so existing chain nodes
		// learn us (and answer, so we learn them). The handshake is the
		// only bc.* frame non-node endpoints ever receive; all subsequent
		// gossip is scoped to discovered chain peers. On multi-process
		// transports addresses appear asynchronously, so rebroadcastLoop
		// re-announces whenever the address set changes (see reHello).
		n.helloed = len(cfg.Network.Addresses())
		ep.Broadcast(kindHello, []byte{helloSyn})
	}
	return n, nil
}

// reHello re-broadcasts the discovery announcement when the transport's
// address set changed since the last hello — on multi-process transports
// peer processes (and their node endpoints) become routable long after
// NewNode's initial broadcast. Quiescent once the membership is stable.
func (n *Node) reHello() {
	if len(n.cfg.Peers) != 0 {
		return
	}
	count := len(n.cfg.Network.Addresses())
	n.peerMu.Lock()
	changed := count != n.helloed
	n.helloed = count
	n.peerMu.Unlock()
	if changed {
		n.ep.Broadcast(kindHello, []byte{helloSyn})
	}
}

// bc.hello payload flags.
const (
	helloSyn byte = 1 // "I just joined, please answer"
	helloAck byte = 2 // targeted answer; no further reply needed
)

// handleHello records a chain peer discovered via the bc.hello handshake and
// answers syn announcements so the newcomer learns this node too.
func (n *Node) handleHello(from string, payload []byte) {
	if from == n.cfg.Name {
		return
	}
	n.peerMu.Lock()
	n.chainPeer[from] = struct{}{}
	n.peerMu.Unlock()
	if len(payload) > 0 && payload[0] == helloSyn {
		_ = n.ep.Send(from, kindHello, []byte{helloAck})
	}
}

// discoveredPeers snapshots the bc.hello peer set.
func (n *Node) discoveredPeers() []string {
	n.peerMu.Lock()
	defer n.peerMu.Unlock()
	out := make([]string, 0, len(n.chainPeer))
	for p := range n.chainPeer {
		out = append(out, p)
	}
	return out
}

// Chain exposes the node's chain view.
func (n *Node) Chain() *Chain { return n.chain }

// Name returns the node's network name.
func (n *Node) Name() string { return n.cfg.Name }

// Mempool exposes the pending-transaction pool.
func (n *Node) Mempool() *Mempool { return n.pool }

// Stats snapshots the node counters.
func (n *Node) Stats() NodeStats {
	return NodeStats{
		BlocksMined:     n.mined.Value(),
		BlocksAccepted:  n.accepted.Value(),
		BlocksRejected:  n.rejected.Value(),
		TxsSubmitted:    n.submitted.Value(),
		EventsDropped:   n.evDropped.Value(),
		MiningCancelled: n.cancelled.Value(),
		OrphansResolved: n.orphans.Value(),
		IngestBatches:   n.inBatches.Value(),
		IngestDropped:   n.inDropped.Value(),
		Verifier:        n.chain.Verifier().Stats(),
	}
}

// Start launches the mining loop (if configured) and the periodic
// transaction rebroadcast. Handlers are active from construction.
func (n *Node) Start() {
	if n.cfg.Mine {
		n.wg.Add(1)
		go n.mineLoop()
	}
	interval := n.cfg.RebroadcastInterval
	if interval == 0 {
		interval = 250 * time.Millisecond
	}
	if interval > 0 {
		n.wg.Add(1)
		go n.rebroadcastLoop(interval)
	}
}

// rebroadcastLoop periodically re-gossips pending transactions; duplicate
// floods are suppressed by receivers' mempools (ErrKnownTx).
func (n *Node) rebroadcastLoop(interval time.Duration) {
	defer n.wg.Done()
	for {
		select {
		case <-n.stop:
			return
		case <-n.clk.After(interval):
		}
		n.reHello()
		for _, tx := range n.pool.All(256) {
			n.gossip(kindTx, EncodeTx(tx), "")
		}
	}
}

// Stop halts mining and closes subscriber channels.
func (n *Node) Stop() {
	n.stopOnce.Do(func() {
		close(n.stop)
	})
	n.wg.Wait()
	n.subMu.Lock()
	for id, ch := range n.subs {
		close(ch)
		delete(n.subs, id)
	}
	n.subMu.Unlock()
}

// SubmitTx validates a transaction, adds it to the mempool and gossips it.
// This is the in-process client entry point used by the Logging Interfaces.
func (n *Node) SubmitTx(tx Transaction) error {
	select {
	case <-n.stop:
		return ErrStopped
	default:
	}
	if err := n.chain.Verifier().VerifyTx(&tx); err != nil {
		return err
	}
	if err := n.pool.Add(tx); err != nil {
		return err
	}
	n.submitted.Inc()
	select {
	case n.newTx <- struct{}{}:
	default:
	}
	n.gossip(kindTx, EncodeTx(tx), "")
	return nil
}

// WaitForReceipt blocks until txID has at least `confirmations` best-chain
// confirmations, returning its receipt.
func (n *Node) WaitForReceipt(ctx context.Context, txID crypto.Digest, confirmations uint64) (Receipt, error) {
	headCh, cancel := n.chain.SubscribeHead()
	defer cancel()
	for {
		rec, conf, err := n.chain.Receipt(txID)
		if err == nil && conf >= confirmations {
			return rec, nil
		}
		select {
		case <-headCh:
		case <-ctx.Done():
			return Receipt{}, fmt.Errorf("blockchain: wait for tx %s: %w", txID.Short(), ctx.Err())
		case <-n.stop:
			return Receipt{}, ErrStopped
		}
	}
}

// SubscribeEvents returns a channel of per-block contract events (delivered
// at-least-once) and a cancel function. The channel is closed on Stop or
// cancel.
func (n *Node) SubscribeEvents(buffer int) (<-chan EventNotification, func()) {
	if buffer <= 0 {
		buffer = 4096
	}
	ch := make(chan EventNotification, buffer)
	n.subMu.Lock()
	n.subSeq++
	id := n.subSeq
	n.subs[id] = ch
	n.subMu.Unlock()
	var once sync.Once
	return ch, func() {
		once.Do(func() {
			n.subMu.Lock()
			if c, ok := n.subs[id]; ok {
				delete(n.subs, id)
				close(c)
			}
			n.subMu.Unlock()
		})
	}
}

func (n *Node) fanout(height uint64, events []contract.Event) {
	n.subMu.Lock()
	defer n.subMu.Unlock()
	for _, ch := range n.subs {
		select {
		case ch <- EventNotification{Height: height, Events: events}:
		default:
			// Subscriber too slow: drop (consumers must treat on-chain
			// state as ground truth; notifications are a fast path).
			n.evDropped.Inc()
		}
	}
}

// gossip fans a frame out to the chain peer set: the static Peers table when
// configured, otherwise the peers discovered through the bc.hello handshake.
// Either way gossip never sprays non-node endpoints (PEPs, PDP, loggers)
// that share the transport.
func (n *Node) gossip(kind string, payload []byte, except string) {
	peers := n.cfg.Peers
	if len(peers) == 0 {
		peers = n.discoveredPeers()
	}
	for _, p := range peers {
		if p == except || p == n.cfg.Name {
			continue
		}
		_ = n.ep.Send(p, kind, payload)
	}
}

// handleTxGossip processes a gossiped transaction. With the batch pipeline
// (the default) it only decodes and enqueues; signature verification and
// mempool admission happen in ingestLoop, batched across the worker pool.
func (n *Node) handleTxGossip(from string, payload []byte) {
	tx, err := DecodeTx(payload)
	if err != nil {
		return
	}
	if n.ingest != nil {
		if n.pool.Has(tx.ID()) {
			return // duplicate flood: stop it before it costs a queue slot
		}
		select {
		case n.ingest <- inboundTx{tx: tx, raw: payload, from: from}:
		default:
			// Queue full under burst; the sender's periodic rebroadcast
			// will retry, so dropping here only delays admission.
			n.inDropped.Inc()
		}
		return
	}
	// Sequential baseline: verify inline on the delivery goroutine.
	if err := n.chain.Verifier().VerifyTx(&tx); err != nil {
		return
	}
	n.admit(tx, payload, from)
}

// admit adds a verified transaction to the mempool, wakes the miner and
// continues the gossip flood.
func (n *Node) admit(tx Transaction, payload []byte, from string) {
	if err := n.pool.Add(tx); err != nil {
		return // duplicate or full: stop the flood here
	}
	select {
	case n.newTx <- struct{}{}:
	default:
	}
	n.gossip(kindTx, payload, from)
}

// ingestLoop drains gossiped transactions and admits them in verification
// batches: all signatures of a batch are checked in one worker-pool pass,
// and transactions already verified (gossip duplicates, rebroadcasts) are
// skipped via the verifier's LRU. Batches form opportunistically — the loop
// takes whatever is queued up to IngestBatch without waiting, so a lone
// transaction is admitted immediately.
func (n *Node) ingestLoop() {
	defer n.wg.Done()
	for {
		var first inboundTx
		select {
		case <-n.stop:
			return
		case first = <-n.ingest:
		}
		batch := []inboundTx{first}
		for len(batch) < n.cfg.IngestBatch {
			select {
			case it := <-n.ingest:
				batch = append(batch, it)
				continue
			default:
			}
			break
		}
		n.inBatches.Inc()
		// Collapse copies of the same transaction flooding in from several
		// peers at once — one verification per unique ID.
		seen := make(map[crypto.Digest]struct{}, len(batch))
		unique := batch[:0]
		for _, it := range batch {
			id := it.tx.ID()
			if _, dup := seen[id]; dup {
				continue
			}
			seen[id] = struct{}{}
			unique = append(unique, it)
		}
		batch = unique
		txs := make([]Transaction, len(batch))
		for i := range batch {
			txs[i] = batch[i].tx
		}
		verifyErrs := n.chain.Verifier().VerifyBatch(txs)
		valid := txs[:0]
		kept := batch[:0]
		for i := range batch {
			if verifyErrs[i] != nil {
				continue
			}
			valid = append(valid, txs[i])
			kept = append(kept, batch[i])
		}
		if len(valid) == 0 {
			continue
		}
		addErrs := n.pool.AddBatch(valid)
		admitted := false
		for i := range kept {
			if addErrs[i] != nil {
				continue // duplicate or full: stop the flood here
			}
			admitted = true
			n.gossip(kindTx, kept[i].raw, kept[i].from)
		}
		if admitted {
			select {
			case n.newTx <- struct{}{}:
			default:
			}
		}
	}
}

// handleBlockGossip processes a gossiped block, resolving orphans by
// fetching ancestors from the sender.
func (n *Node) handleBlockGossip(from string, payload []byte) {
	b, err := DecodeBlock(payload)
	if err != nil {
		return
	}
	n.importBlock(b, from)
}

// importBlock adds a block, pulling missing ancestors from `from` when
// needed, and re-gossips on success.
func (n *Node) importBlock(b *Block, from string) {
	err := n.chain.AddBlock(b)
	switch {
	case err == nil:
		n.afterAccept(b, from)
	case errors.Is(err, ErrKnownBlock):
		// Flood already saw it; stop.
	case errors.Is(err, ErrOrphanBlock) && from != "":
		if n.resolveOrphans(b, from) {
			n.afterAccept(b, from)
		}
	default:
		n.rejected.Inc()
	}
}

func (n *Node) afterAccept(b *Block, from string) {
	n.accepted.Inc()
	n.pool.PruneConfirmed(n.chain.AccountNonces())
	n.gossip(kindBlock, b.Encode(), from)
}

// resolveOrphans walks the parent chain back from b, fetching blocks from
// the peer until one attaches, then applies the fetched suffix in order.
// Returns true if b was eventually accepted.
func (n *Node) resolveOrphans(b *Block, peer string) bool {
	pending := []*Block{b}
	cursor := b.Header.PrevHash
	for depth := 0; depth < n.cfg.SyncDepth; depth++ {
		if _, ok := n.chain.BlockByHash(cursor); ok {
			break
		}
		ctx, cancelCtx := context.WithTimeout(context.Background(), 5*time.Second)
		resp, err := n.ep.Call(ctx, peer, kindGetBlock, cursor.Bytes())
		cancelCtx()
		if err != nil {
			return false
		}
		parent, err := DecodeBlock(resp)
		if err != nil || parent.Hash() != cursor {
			return false
		}
		pending = append(pending, parent)
		cursor = parent.Header.PrevHash
	}
	// Apply oldest-first.
	for i := len(pending) - 1; i >= 0; i-- {
		err := n.chain.AddBlock(pending[i])
		if err != nil && !errors.Is(err, ErrKnownBlock) {
			n.rejected.Inc()
			return false
		}
	}
	n.orphans.Inc()
	return true
}

// handleGetBlock serves a block by hash.
func (n *Node) handleGetBlock(from string, payload []byte) ([]byte, error) {
	if len(payload) != crypto.DigestSize {
		return nil, errors.New("blockchain: getblock: bad hash size")
	}
	var h crypto.Digest
	copy(h[:], payload)
	b, ok := n.chain.BlockByHash(h)
	if !ok {
		return nil, fmt.Errorf("blockchain: getblock %s: not found", h.Short())
	}
	return b.Encode(), nil
}

type headInfo struct {
	Hash   crypto.Digest `json:"hash"`
	Height uint64        `json:"height"`
}

// handleHead serves the node's best-chain tip.
func (n *Node) handleHead(from string, payload []byte) ([]byte, error) {
	hash, height := n.chain.Head()
	return json.Marshal(headInfo{Hash: hash, Height: height})
}

// handleSubmit accepts a client-submitted transaction over the network.
func (n *Node) handleSubmit(from string, payload []byte) ([]byte, error) {
	tx, err := DecodeTx(payload)
	if err != nil {
		return nil, err
	}
	if err := n.SubmitTx(tx); err != nil {
		return nil, err
	}
	id := tx.ID()
	return id.Bytes(), nil
}

// SyncFrom pulls the peer's best chain and imports it (used by nodes that
// join or restart).
func (n *Node) SyncFrom(peer string) error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	resp, err := n.ep.Call(ctx, peer, kindHead, nil)
	if err != nil {
		return fmt.Errorf("blockchain: sync from %q: %w", peer, err)
	}
	var hi headInfo
	if err := json.Unmarshal(resp, &hi); err != nil {
		return fmt.Errorf("blockchain: sync from %q: %w", peer, err)
	}
	if _, ok := n.chain.BlockByHash(hi.Hash); ok {
		return nil // already have their head
	}
	blkCtx, cancelBlk := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancelBlk()
	raw, err := n.ep.Call(blkCtx, peer, kindGetBlock, hi.Hash.Bytes())
	if err != nil {
		return fmt.Errorf("blockchain: sync head block: %w", err)
	}
	b, err := DecodeBlock(raw)
	if err != nil {
		return err
	}
	n.importBlock(b, peer)
	if _, ok := n.chain.BlockByHash(hi.Hash); !ok {
		return fmt.Errorf("blockchain: sync from %q did not converge", peer)
	}
	return nil
}

// headAge reports how long ago the current head block was produced. A
// fresh chain (only genesis, whose timestamp is a fixed past instant)
// reports a large age, which correctly kick-starts empty-block production.
func (n *Node) headAge() time.Duration {
	hash, _ := n.chain.Head()
	b, ok := n.chain.BlockByHash(hash)
	if !ok {
		return 0
	}
	return n.clk.Now().Sub(b.Header.Time())
}

// mineLoop is the node's proof-of-work production loop.
func (n *Node) mineLoop() {
	defer n.wg.Done()
	headCh, cancelSub := n.chain.SubscribeHead()
	defer cancelSub()

	for {
		select {
		case <-n.stop:
			return
		default:
		}
		// Drain a stale head signal from our own last accept.
		select {
		case <-headCh:
		default:
		}

		txs := n.pool.Collect(n.chain.Config().MaxTxPerBlock, n.chain.AccountNonces())
		if len(txs) == 0 {
			if n.cfg.EmptyBlockInterval == 0 {
				// Wait for work.
				select {
				case <-n.stop:
					return
				case <-n.newTx:
				case <-headCh:
				}
				continue
			}
			// Pace empty blocks against the age of the chain tip (not
			// our own last block) so multiple miners do not race to
			// produce redundant empty siblings.
			if age := n.headAge(); age < n.cfg.EmptyBlockInterval {
				select {
				case <-n.stop:
					return
				case <-n.newTx:
					continue
				case <-headCh:
					continue
				case <-n.clk.After(n.cfg.EmptyBlockInterval - age):
				}
				continue
			}
			// Fall through: mine an empty liveness block.
		}

		parentHash, parentHeight := n.chain.Head()
		b := &Block{
			Header: BlockHeader{
				Height:       parentHeight + 1,
				PrevHash:     parentHash,
				MerkleRoot:   ComputeMerkleRoot(txs),
				TimeUnixNano: n.clk.Now().UnixNano(),
				Difficulty:   n.chain.NextDifficulty(),
				Miner:        n.cfg.Name,
			},
			Txs: txs,
		}

		attemptCtx, cancelAttempt := context.WithCancel(context.Background())
		watcherDone := make(chan struct{})
		go func() {
			select {
			case <-n.stop:
				cancelAttempt()
			case <-headCh:
				cancelAttempt()
			case <-watcherDone:
			}
		}()
		mined := Mine(attemptCtx, b, minerSeed(n.cfg.Name, b.Header.Height))
		close(watcherDone)
		cancelAttempt()

		if !mined {
			n.cancelled.Inc()
			continue
		}
		if err := n.chain.AddBlock(b); err != nil {
			// Lost a race with a concurrent import; retry from fresh head.
			n.cancelled.Inc()
			continue
		}
		n.mined.Inc()
		n.afterAccept(b, "")
	}
}
