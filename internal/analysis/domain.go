package analysis

import (
	"fmt"
	"sort"

	"drams/internal/idgen"
	"drams/internal/xacml"
)

// attrDomain is the abstract value domain of one attribute: the constants
// the policy mentions, boundary neighbours for ordered types, one fresh
// value the policy never mentions, and "absent".
type attrDomain struct {
	des    xacml.Designator // MustBePresent stripped
	values []xacml.Value    // candidate present values
}

// Domain is the finite abstraction of a policy's attribute space. Every
// behavioural boundary of the policy (equality with a constant, ordered
// thresholds, presence) is crossed by at least one domain element, so
// exhaustive evaluation over the domain exercises every reachable branch of
// the compiled form — the standard constant-analysis construction used by
// XACML verification tools (ref [8]).
type Domain struct {
	attrs []attrDomain
}

// ExtractDomain walks one or more policy sets and builds the union domain.
func ExtractDomain(sets ...*xacml.PolicySet) *Domain {
	acc := make(map[string]map[string]xacml.Value) // attrKey → valueKey → value
	des := make(map[string]xacml.Designator)

	addVal := func(d xacml.Designator, v xacml.Value) {
		d.MustBePresent = false
		key := d.Key()
		if _, ok := acc[key]; !ok {
			acc[key] = make(map[string]xacml.Value)
			des[key] = d
		}
		acc[key][v.Key()] = v
		// Boundary neighbours for ordered types so that <, <=, >, >=
		// thresholds are crossed.
		switch v.T {
		case xacml.TypeInt:
			for _, nb := range []xacml.Value{xacml.Int(v.I - 1), xacml.Int(v.I + 1)} {
				acc[key][nb.Key()] = nb
			}
		case xacml.TypeFloat:
			for _, nb := range []xacml.Value{xacml.Float(v.F - 0.5), xacml.Float(v.F + 0.5)} {
				acc[key][nb.Key()] = nb
			}
		}
	}
	addAttr := func(d xacml.Designator) {
		d.MustBePresent = false
		key := d.Key()
		if _, ok := acc[key]; !ok {
			acc[key] = make(map[string]xacml.Value)
			des[key] = d
		}
	}

	var walkTarget func(t xacml.Target)
	walkTarget = func(t xacml.Target) {
		for _, any := range t.AnyOf {
			for _, all := range any.AllOf {
				for _, m := range all.Matches {
					addVal(m.Attr, m.Lit)
				}
			}
		}
	}
	var walkExpr func(e xacml.Expr)
	walkExpr = func(e xacml.Expr) {
		if e == nil {
			return
		}
		e.Walk(func(n xacml.Expr) {
			switch x := n.(type) {
			case *xacml.CmpExpr:
				addVal(x.Attr, x.Lit)
			case *xacml.InExpr:
				for _, v := range x.Set {
					addVal(x.Attr, v)
				}
			case *xacml.PresentExpr:
				addAttr(x.Attr)
			}
		})
	}
	var walkSet func(ps *xacml.PolicySet)
	walkPolicy := func(p *xacml.Policy) {
		walkTarget(p.Target)
		for _, ru := range p.Rules {
			walkTarget(ru.Target)
			walkExpr(ru.Condition)
		}
	}
	walkSet = func(ps *xacml.PolicySet) {
		walkTarget(ps.Target)
		for _, item := range ps.Items {
			if item.Policy != nil {
				walkPolicy(item.Policy)
			}
			if item.Set != nil {
				walkSet(item.Set)
			}
		}
	}
	for _, ps := range sets {
		walkSet(ps)
	}

	dom := &Domain{}
	keys := make([]string, 0, len(acc))
	for k := range acc {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		vals := acc[k]
		ad := attrDomain{des: des[k]}
		vkeys := make([]string, 0, len(vals))
		for vk := range vals {
			vkeys = append(vkeys, vk)
		}
		sort.Strings(vkeys)
		var sawString, sawInt bool
		for _, vk := range vkeys {
			v := vals[vk]
			ad.values = append(ad.values, v)
			switch v.T {
			case xacml.TypeString:
				sawString = true
			case xacml.TypeInt:
				sawInt = true
			}
		}
		// One fresh value per observed type (a value the policy never
		// names) to represent "everything else".
		if sawString || len(ad.values) == 0 {
			ad.values = append(ad.values, xacml.String("⟂fresh⟂"))
		}
		if sawInt {
			ad.values = append(ad.values, xacml.Int(1<<40))
		}
		dom.attrs = append(dom.attrs, ad)
	}
	return dom
}

// AttrCount returns the number of abstracted attributes.
func (d *Domain) AttrCount() int { return len(d.attrs) }

// Size returns the number of abstract requests (product of per-attribute
// options including "absent"), saturating at maxInt to avoid overflow.
func (d *Domain) Size() int {
	const maxInt = int(^uint(0) >> 1)
	size := 1
	for _, a := range d.attrs {
		opts := len(a.values) + 1 // +1 for absent
		if size > maxInt/opts {
			return maxInt
		}
		size *= opts
	}
	return size
}

// EnumParams bound domain enumeration.
type EnumParams struct {
	// MaxRequests caps how many abstract requests are produced. If the
	// full cartesian product fits, enumeration is exhaustive; otherwise a
	// seeded uniform sample is drawn.
	MaxRequests int
	// Seed drives sampling when the product exceeds MaxRequests.
	Seed uint64
}

// DefaultEnumParams enumerate up to 20 000 abstract requests.
func DefaultEnumParams() EnumParams { return EnumParams{MaxRequests: 20000, Seed: 1} }

// Requests materialises the abstract request set.
func (d *Domain) Requests(params EnumParams) []*xacml.Request {
	if params.MaxRequests <= 0 {
		params.MaxRequests = 20000
	}
	if len(d.attrs) == 0 {
		return []*xacml.Request{xacml.NewRequest("abs-0")}
	}
	if size := d.Size(); size <= params.MaxRequests {
		return d.enumerate(size)
	}
	return d.sample(params)
}

// enumerate walks the full cartesian product (size precomputed to fit).
func (d *Domain) enumerate(size int) []*xacml.Request {
	out := make([]*xacml.Request, 0, size)
	idx := make([]int, len(d.attrs)) // 0 = absent, k>0 = values[k-1]
	for {
		r := xacml.NewRequest(fmt.Sprintf("abs-%d", len(out)))
		for i, a := range d.attrs {
			if idx[i] > 0 {
				r.Add(a.des.Cat, a.des.ID, a.values[idx[i]-1])
			}
		}
		out = append(out, r)
		// Odometer increment.
		i := 0
		for ; i < len(idx); i++ {
			idx[i]++
			if idx[i] <= len(d.attrs[i].values) {
				break
			}
			idx[i] = 0
		}
		if i == len(idx) {
			return out
		}
	}
}

// sample draws MaxRequests uniform abstract requests.
func (d *Domain) sample(params EnumParams) []*xacml.Request {
	rng := idgen.NewRand(params.Seed)
	out := make([]*xacml.Request, 0, params.MaxRequests)
	for n := 0; n < params.MaxRequests; n++ {
		r := xacml.NewRequest(fmt.Sprintf("abs-%d", n))
		for _, a := range d.attrs {
			pick := rng.Intn(len(a.values) + 1)
			if pick > 0 {
				r.Add(a.des.Cat, a.des.ID, a.values[pick-1])
			}
		}
		out = append(out, r)
	}
	return out
}
