package obs

import (
	"strconv"
	"strings"
	"testing"
)

// FuzzParseValues hardens the scrape side of the exposition codec: loadgen
// feeds ParseValues bytes read off fleet /metrics endpoints, so arbitrary
// input must never panic, and any input it accepts must survive a
// render→reparse round trip unchanged.
func FuzzParseValues(f *testing.F) {
	f.Add("# HELP drams_up whether the node is serving\ndrams_up 1\n")
	f.Add("drams_probe_rtt_ms_bucket{le=\"+Inf\",peer=\"cloud b\"} 42 1700000000000\n")
	f.Add("drams_decisions_total{outcome=\"permit\"} 17\nbad line here\n")
	f.Add("} 0.5\nname NaN\nneg -Inf\n")
	f.Fuzz(func(t *testing.T, input string) {
		parsed, err := ParseValues(strings.NewReader(input))
		if err != nil {
			return
		}
		// Re-render every accepted series as `name value` and re-parse:
		// the map must come back identical (NaN compares equal to itself
		// for this purpose).
		var sb strings.Builder
		for name, v := range parsed {
			sb.WriteString(name)
			sb.WriteByte(' ')
			sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
			sb.WriteByte('\n')
		}
		again, err := ParseValues(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("re-parse of rendered output failed: %v\nrendered:\n%s", err, sb.String())
		}
		if len(again) != len(parsed) {
			t.Fatalf("round trip changed series count: %d -> %d", len(parsed), len(again))
		}
		for name, v := range parsed {
			got, ok := again[name]
			if !ok {
				t.Fatalf("round trip lost series %q", name)
			}
			if got != v && !(got != got && v != v) {
				t.Fatalf("round trip changed %q: %v -> %v", name, v, got)
			}
		}
	})
}
