// drams-node runs DRAMS blockchain nodes in two modes.
//
// Cluster-sim mode (default): a local multi-node cluster over netsim that
// verifies replication invariants live — it mines to a target height under
// injected network latency, exercises a partition/heal cycle, and checks
// that every node converges to the same state digest.
//
//	drams-node [-nodes 3] [-difficulty 10] [-height 30] [-latency 2ms]
//
// Daemon mode (-listen): one real federation process over the TCP
// transport. Each process hosts the chain node, Logging Interface and
// probing agent of one tenant; the infrastructure tenant's process also
// hosts the PDP, publishes the policy on-chain, and runs the monitor and
// analyser. Edge tenant processes host a PEP and (with -requests) drive
// end-to-end access decisions against the remote PDP. A 3-process loopback
// federation:
//
//	drams-node -listen 127.0.0.1:19701 -tenant infrastructure \
//	    -federation tenant-1,tenant-2
//	drams-node -listen 127.0.0.1:19702 -join 127.0.0.1:19701,127.0.0.1:19703 \
//	    -tenant tenant-1 -federation tenant-1,tenant-2 -requests 4
//	drams-node -listen 127.0.0.1:19703 -join 127.0.0.1:19701,127.0.0.1:19702 \
//	    -tenant tenant-2 -federation tenant-1,tenant-2 -requests 4
//
// Every process derives the same identities, shared key and contract
// configuration from -seed, so their chains validate each other's
// transactions. See docs/DEPLOY.md for the full walkthrough.
package main

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // profiling endpoints, served only behind -pprof-addr
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"drams"
	"drams/internal/attack"
	"drams/internal/blockchain"
	"drams/internal/clock"
	"drams/internal/contract"
	"drams/internal/core"
	"drams/internal/crypto"
	"drams/internal/federation"
	"drams/internal/idgen"
	"drams/internal/logger"
	"drams/internal/metrics"
	"drams/internal/netsim"
	"drams/internal/obs"
	"drams/internal/pap"
	"drams/internal/store"
	"drams/internal/transport/tcp"
	"drams/internal/xacml"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "drams-node:", err)
		os.Exit(1)
	}
}

func run() error {
	nodes := flag.Int("nodes", 3, "cluster-sim: cluster size")
	difficulty := flag.Int("difficulty", 10, "PoW difficulty (leading zero bits)")
	height := flag.Uint64("height", 30, "cluster-sim: target chain height")
	latency := flag.Duration("latency", 2*time.Millisecond, "cluster-sim: simulated network latency")

	listen := flag.String("listen", "", "daemon: host:port to listen on (enables daemon mode)")
	advertise := flag.String("advertise", "", "daemon: address peers dial to reach this process (required when -listen binds a wildcard host)")
	join := flag.String("join", "", "daemon: comma-separated peer addresses to connect to")
	tenant := flag.String("tenant", "", "daemon: tenant this process hosts ('infrastructure' hosts the PDP and mines)")
	fedList := flag.String("federation", "tenant-1,tenant-2", "daemon: comma-separated edge tenant names of the whole federation")
	seed := flag.Uint64("seed", 7, "daemon: federation seed (identities and shared key derive from it; must match across processes)")
	requests := flag.Int("requests", 0, "daemon: access decisions to drive through this tenant's PEP")
	requestEvery := flag.Duration("request-every", 0, "daemon: keep driving one access decision at this interval until shutdown")
	mine := flag.Bool("mine", false, "daemon: mine on this node even if it is not the infrastructure process")
	byzantine := flag.String("byzantine", "", "daemon: adversarial mode for this member's chain node: 'withhold' mines normally but suppresses all outbound block/tx gossip (attack drills)")
	byzantineAfter := flag.Duration("byzantine-after", 0, "daemon: delay before the -byzantine behaviour engages")
	emptyBlock := flag.Duration("empty-block", 50*time.Millisecond, "daemon: empty-block cadence")
	timeoutBlocks := flag.Uint64("timeout-blocks", 64, "daemon: log-match M3 window in blocks (consensus-critical; must match across processes)")
	requireVerdict := flag.Bool("require-verdict", true, "daemon: demand an analyser verdict per exchange (consensus-critical; must match across processes)")
	runFor := flag.Duration("run-for", 0, "daemon: exit cleanly after this duration (0 = until signalled)")
	dataDir := flag.String("data-dir", "", "daemon: directory for the durable chain store; a restarted process re-validates and resumes its persisted chain instead of starting from genesis")
	policyFile := flag.String("policy-file", "", "daemon: policy-set JSON to publish on-chain as a PAP update (any member may push)")
	policyAtHeight := flag.Uint64("policy-at-height", 0, "daemon: wait for this local chain height before pushing -policy-file (0 = push immediately)")
	policyDelta := flag.Uint64("policy-delta", 5, "daemon: activation delay of the -policy-file update, in blocks after submission")
	printPolicy := flag.String("print-policy", "", "print a built-in policy set as JSON and exit: standard:<version> or restricted:<version>")
	flushWindow := flag.Int("log-flush-window", 16, "daemon: max probe records per Merkle-anchored LI batch transaction (1 disables batching)")
	pprofAddr := flag.String("pprof-addr", "", "daemon: serve net/http/pprof on this host:port (empty disables)")
	metricsAddr := flag.String("metrics-addr", "", "daemon: serve /metrics, /healthz, /readyz (and /debug/pprof/) on this host:port (empty disables)")
	catchupDelay := flag.Duration("catchup-delay", 0, "daemon: hold the initial chain catch-up for this long after startup (keeps /readyz at 503 long enough for black-box readiness checks)")
	flag.Parse()

	if *printPolicy != "" {
		return runPrintPolicy(*printPolicy)
	}
	if *listen != "" {
		if *tenant == "" {
			return fmt.Errorf("daemon mode needs -tenant")
		}
		return runDaemon(daemonConfig{
			listen:         *listen,
			advertise:      *advertise,
			join:           splitList(*join),
			tenant:         *tenant,
			edges:          splitList(*fedList),
			seed:           *seed,
			difficulty:     uint8(*difficulty),
			requests:       *requests,
			requestEvery:   *requestEvery,
			mine:           *mine,
			byzantine:      *byzantine,
			byzantineAfter: *byzantineAfter,
			emptyBlock:     *emptyBlock,
			timeoutBlocks:  *timeoutBlocks,
			requireVerdict: *requireVerdict,
			runFor:         *runFor,
			dataDir:        *dataDir,
			policyFile:     *policyFile,
			policyAtHeight: *policyAtHeight,
			policyDelta:    *policyDelta,
			flushWindow:    *flushWindow,
			pprofAddr:      *pprofAddr,
			metricsAddr:    *metricsAddr,
			catchupDelay:   *catchupDelay,
		})
	}
	return runClusterSim(*nodes, *difficulty, *height, *latency)
}

// runPrintPolicy emits a built-in policy set as JSON (the smoke test uses
// it to produce the v2 update file without hand-written JSON).
func runPrintPolicy(spec string) error {
	name, version, ok := strings.Cut(spec, ":")
	if !ok || version == "" {
		return fmt.Errorf("-print-policy wants name:version, got %q", spec)
	}
	var ps *xacml.PolicySet
	switch name {
	case "standard":
		ps = xacml.StandardPolicy(version)
	case "restricted":
		ps = xacml.RestrictedPolicy(version)
	default:
		return fmt.Errorf("-print-policy knows standard|restricted, got %q", name)
	}
	_, err := os.Stdout.Write(append(ps.Encode(), '\n'))
	return err
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Daemon mode: one federation process over TCP.

const infraTenant = "infrastructure"

type daemonConfig struct {
	listen       string
	advertise    string
	join         []string
	tenant       string
	edges        []string
	seed         uint64
	difficulty   uint8
	requests     int
	requestEvery time.Duration
	mine         bool
	emptyBlock   time.Duration
	runFor       time.Duration
	dataDir      string

	// Adversarial drill: after byzantineAfter, this member's chain node
	// starts misbehaving per the byzantine mode ("withhold" suppresses
	// all outbound gossip). The rest of the federation must flag the
	// victim's half-anchored exchanges via M3.
	byzantine      string
	byzantineAfter time.Duration

	// Policy administration: push policyFile as an on-chain PAP update
	// once the local chain reaches policyAtHeight, activating policyDelta
	// blocks after submission.
	policyFile     string
	policyAtHeight uint64
	policyDelta    uint64

	// Consensus-critical knobs shared by every process (see
	// drams.ChainParams).
	timeoutBlocks  uint64
	requireVerdict bool

	// flushWindow caps records per Merkle-anchored LI batch transaction
	// (1 disables batching). Local policy, not consensus: honest replicas
	// accept both plain and batched log transactions.
	flushWindow int

	// pprofAddr, when set, serves net/http/pprof on that address.
	pprofAddr string

	// metricsAddr, when set, serves the operations surface — /metrics
	// (Prometheus text exposition), /healthz, /readyz and /debug/pprof/ —
	// on that address. Readiness gates on chain catch-up and policy
	// watcher freshness, so an orchestrator holds traffic from a
	// rejoining process until it has resynced.
	metricsAddr string

	// catchupDelay holds the initial catch-up sync after startup, keeping
	// a non-producing process not-ready for at least that long (black-box
	// readiness checks need an observable 503 window).
	catchupDelay time.Duration
}

func runDaemon(cfg daemonConfig) error {
	logf := func(format string, args ...any) {
		fmt.Printf("[%s] %s\n", cfg.tenant, fmt.Sprintf(format, args...))
	}
	// Operations surface: one registry/tracer/health per process; the
	// collectors are registered as each component comes up.
	reg := metrics.NewRegistry()
	gatherer := obs.NewGatherer(reg)
	tracer := obs.NewTracer(reg, obs.DefaultTraceCapacity)
	health := obs.NewHealth()
	if cfg.metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/", obs.Handler(gatherer, health))
		// pprof shares the ops port: net/http/pprof registers on the
		// default mux, which we mount under its canonical prefix.
		mux.Handle("/debug/pprof/", http.DefaultServeMux)
		go func() {
			logf("metrics listening on http://%s/metrics (health on /healthz, /readyz)", cfg.metricsAddr)
			if err := http.ListenAndServe(cfg.metricsAddr, mux); err != nil {
				logf("metrics server: %v", err)
			}
		}()
	}
	if cfg.pprofAddr != "" && cfg.pprofAddr != cfg.metricsAddr {
		go func() {
			logf("pprof listening on http://%s/debug/pprof/", cfg.pprofAddr)
			if err := http.ListenAndServe(cfg.pprofAddr, nil); err != nil {
				logf("pprof server: %v", err)
			}
		}()
	}
	isInfra := cfg.tenant == infraTenant

	tenants := append([]string{}, cfg.edges...)
	tenants = append(tenants, infraTenant)
	found := false
	for _, t := range tenants {
		if t == cfg.tenant {
			found = true
		}
	}
	if !found {
		return fmt.Errorf("tenant %q is not in the federation %v", cfg.tenant, tenants)
	}

	// Deterministic federation-wide material: component identities, the
	// shared LI key, the contract registry and the chain parameters — the
	// exact derivation drams.New uses, so a drams.Open deployment with the
	// same seed, tenant set and ChainParams can join this federation.
	material := drams.NewChainMaterial(cfg.seed, tenants, drams.ChainParams{
		Difficulty:     cfg.difficulty,
		TimeoutBlocks:  cfg.timeoutBlocks,
		RequireVerdict: cfg.requireVerdict,
	})
	liIDs := material.LIIdentities
	analyserID, papID := material.AnalyserID, material.PAPID
	key := material.Key
	chainCfg := material.Chain

	// The process's wire: a TCP transport on loopback or a real interface.
	tr, err := tcp.New(tcp.Config{ListenAddr: cfg.listen, AdvertiseAddr: cfg.advertise, Peers: cfg.join})
	if err != nil {
		return err
	}
	defer tr.Close()
	logf("listening on %s, peers %v", tr.Advertise(), cfg.join)
	gatherer.Register(drams.TransportCollector(tr))

	var nodePeers []string
	for _, t := range tenants {
		nodePeers = append(nodePeers, "node@"+t)
	}
	// Durable chain store: a process restarted with the same -data-dir
	// re-validates its persisted chain and rejoins instead of starting a
	// fresh genesis.
	var chainStore *store.KV
	if cfg.dataDir != "" {
		if err := os.MkdirAll(cfg.dataDir, 0o755); err != nil {
			return fmt.Errorf("data dir: %w", err)
		}
		chainStore, err = store.Open(filepath.Join(cfg.dataDir, "chain.wal"))
		if err != nil {
			return fmt.Errorf("open chain store: %w", err)
		}
		defer chainStore.Close()
	}
	node, err := blockchain.NewNode(blockchain.NodeConfig{
		Name:               "node@" + cfg.tenant,
		Chain:              chainCfg,
		Network:            tr,
		Peers:              nodePeers,
		Mine:               isInfra || cfg.mine,
		EmptyBlockInterval: cfg.emptyBlock,
		Store:              chainStore,
	})
	if err != nil {
		return err
	}
	defer node.Stop()
	node.Start()
	gatherer.Register(drams.NodeCollector(node.Name(), node))
	health.AddReady("chain", drams.ChainReady(node))
	muteLogs := false
	switch cfg.byzantine {
	case "":
	case "withhold":
		byz := attack.Byzantine(node)
		go func() {
			if cfg.byzantineAfter > 0 {
				time.Sleep(cfg.byzantineAfter)
			}
			byz.WithholdGossip()
			logf("BYZANTINE mode=withhold engaged: outbound block/tx gossip suppressed")
		}()
	case "mute-logs":
		muteLogs = true // engaged below, once the probing agent exists
	default:
		return fmt.Errorf("unknown -byzantine mode %q (known: withhold, mute-logs)", cfg.byzantine)
	}
	if chainStore != nil {
		st := node.Stats()
		logf("restored chain height=%d (%d blocks reloaded, %d dropped from damaged tail)",
			node.Chain().Height(), st.BlocksReloaded, st.ReloadDropped)
	}

	li, err := logger.NewLI(logger.LIConfig{
		Name:        "li@" + cfg.tenant,
		Tenant:      cfg.tenant,
		Node:        node,
		Identity:    liIDs[cfg.tenant],
		Key:         key,
		Mode:        logger.SubmitAsync,
		FlushWindow: cfg.flushWindow,
	})
	if err != nil {
		return err
	}
	li.Start()
	defer li.Stop()
	li.SetTracer(tracer)
	gatherer.Register(drams.LICollector(cfg.tenant, li))
	agent := logger.NewAgent("agent@"+cfg.tenant, cfg.tenant, li, clock.System{})
	gatherer.Register(drams.AgentCollector(cfg.tenant, agent))
	if muteLogs {
		go func() {
			if cfg.byzantineAfter > 0 {
				time.Sleep(cfg.byzantineAfter)
			}
			agent.Mute(core.KindPEPResponse)
			logf("BYZANTINE mode=mute-logs engaged: pep.response records suppressed")
		}()
	}

	// Every process watches the chain-replicated policy lifecycle; the
	// infrastructure process additionally hot-reloads its PDP/PRP and
	// feeds the monitor.
	var infra *infraPlane
	if isInfra {
		infra, err = newInfraPlane(tr, node, agent, analyserID, key, logf)
		if err != nil {
			return err
		}
		infra.pdpService.SetTracer(tracer)
		infra.analyser.SetTracer(tracer)
		infra.monitor.SetTracer(tracer)
		gatherer.Register(drams.PDPCollector(infra.pdpService, infra.pdp))
		gatherer.Register(drams.AnalyserCollector(infra.analyser))
		gatherer.Register(drams.MonitorCollector(infra.monitor))
	}
	watcherCfg := pap.WatcherConfig{Node: node}
	if infra != nil {
		watcherCfg.PDP = infra.pdp
		watcherCfg.PRP = infra.prp
	}
	watcherCfg.OnEvent = func(ev pap.Event) {
		switch ev.Kind {
		case pap.EventStaged:
			logf("policy %s staged (digest %s, activates at height %d)", ev.Version, ev.Digest.Short(), ev.Height)
		case pap.EventActivated:
			logf("policy %s activated at height %d digest %s", ev.Version, ev.Height, ev.Digest.Short())
		case pap.EventRejected:
			logf("policy %s REJECTED: %s", ev.Version, ev.Err)
		}
		if infra != nil {
			infra.onPolicyEvent(ev)
		}
	}
	watcher, err := pap.NewWatcher(watcherCfg)
	if err != nil {
		return err
	}
	watcher.Start()
	defer watcher.Stop()
	gatherer.Register(drams.WatcherCollector(watcher))
	health.AddReady("policy-watcher", drams.WatcherReady(node, watcher))

	// The infrastructure process publishes the initial policy on-chain and
	// waits for its own watcher to activate it — unless the chain restored
	// from -data-dir already carries an active policy, which re-anchoring
	// would downgrade fleet-wide.
	if infra != nil {
		activeVer := ""
		node.Chain().ReadState(core.PolicyContractName, func(st contract.StateDB) {
			activeVer, _, _ = core.ReadActivePolicy(st)
		})
		if activeVer != "" {
			logf("restored chain already carries active policy %s; skipping initial anchor", activeVer)
		} else {
			admin := pap.NewAdmin(node, papID)
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			if _, err := admin.UpdatePolicy(ctx, infra.initial, pap.UpdateOptions{}); err != nil {
				cancel()
				return fmt.Errorf("anchor policy: %w", err)
			}
			if err := watcher.WaitForVersion(ctx, infra.initial.Version); err != nil {
				cancel()
				return err
			}
			cancel()
			logf("policy %s anchored on-chain and loaded", infra.initial.Version)
		}
	}

	var pep *federation.PEPService
	if !isInfra {
		pep, err = federation.NewPEPService(tr, cfg.tenant, 5*time.Second)
		if err != nil {
			return err
		}
		pep.SetProbe(agent)
		pep.SetTracer(tracer)
		gatherer.Register(drams.PEPCollector(cfg.tenant, pep))
	}

	stopCh := make(chan os.Signal, 2)
	signal.Notify(stopCh, os.Interrupt, syscall.SIGTERM)
	deadline := make(<-chan time.Time)
	if cfg.runFor > 0 {
		deadline = time.After(cfg.runFor)
	}
	done := make(chan struct{})
	defer close(done)

	// Actively pull the chain suffix this process is missing (restart from
	// -data-dir, late join) over batched bc.getrange calls instead of
	// waiting for the next gossiped block to trigger orphan resolution.
	// Non-producing processes report not-ready until that first sync
	// round completes, so a restarted member is drained while it rejoins.
	synced := make(chan struct{})
	if !(isInfra || cfg.mine) {
		health.AddReady("sync", func() error {
			select {
			case <-synced:
				return nil
			default:
				return fmt.Errorf("initial chain catch-up in progress (height %d)", node.Chain().Height())
			}
		})
	}
	go catchUp(node, nodePeers, cfg.catchupDelay, logf, done, synced)

	// Any member can administer policies: push the -policy-file update
	// once the local chain reaches the trigger height.
	if cfg.policyFile != "" {
		go pushPolicyFile(node, papID, watcher, cfg, logf, done)
	}

	// Edge processes drive end-to-end decisions once the PDP is reachable
	// (fire-and-forget: the daemon keeps serving until signalled/-run-for).
	if pep != nil && (cfg.requests > 0 || cfg.requestEvery > 0) {
		go driveRequests(pep, cfg, logf, done)
	}

	status := time.NewTicker(500 * time.Millisecond)
	defer status.Stop()
	for {
		select {
		case <-stopCh:
			logf("signalled, shutting down at height %d", node.Chain().Height())
			return nil
		case <-deadline:
			logf("run-for elapsed, final height %d digest %s",
				node.Chain().Height(), node.Chain().StateDigest().Short())
			return nil
		case <-status.C:
			st := node.Stats()
			logf("status height=%d digest=%s mined=%d accepted=%d",
				node.Chain().Height(), node.Chain().StateDigest().Short(),
				st.BlocksMined, st.BlocksAccepted)
		}
	}
}

// infraPlane bundles the infrastructure tenant's extras: the PDP service,
// PRP, analyser and monitor, plus the initial policy to anchor.
type infraPlane struct {
	pdp        *xacml.PDP
	pdpService *federation.PDPService
	prp        *xacml.PRP
	analyser   *core.Analyser
	monitor    *core.Monitor
	initial    *xacml.PolicySet
	logf       func(string, ...any)
}

// newInfraPlane brings up the PDP service and the monitoring plane; the
// policy itself is anchored on-chain by the caller through a pap.Admin and
// applied by the process's watcher like on every other member.
func newInfraPlane(tr *tcp.Transport, node *blockchain.Node, agent *logger.Agent,
	analyserID *crypto.Identity, key crypto.Key,
	logf func(string, ...any)) (*infraPlane, error) {
	// The role-gated standard policy (canonical copy in xacml.StandardPolicy);
	// edges never see the policy itself, only its decisions.
	pdp := xacml.NewPDP(nil)
	pdp.SetCache(xacml.NewDecisionCache(0))
	pdpService, err := federation.NewPDPService(tr, pdp)
	if err != nil {
		return nil, err
	}
	pdpService.SetProbe(agent)

	analyser, err := core.NewAnalyser("analyser", node, analyserID, key)
	if err != nil {
		return nil, err
	}
	analyser.Start()

	monitor := core.NewMonitor(node, clock.System{})
	monitor.OnAlert(func(a core.Alert) {
		logf("ALERT type=%s req=%s tenant=%s", a.Type, a.ReqID, a.Tenant)
	})
	monitor.Start()
	return &infraPlane{
		pdp: pdp, pdpService: pdpService, prp: xacml.NewPRP(),
		analyser: analyser, monitor: monitor,
		initial: xacml.StandardPolicy("v1"), logf: logf,
	}, nil
}

// onPolicyEvent keeps the analyser's compiled policy in step with the
// watcher-applied activations and feeds rollout events into the monitor.
func (ip *infraPlane) onPolicyEvent(ev pap.Event) {
	if ev.Kind == pap.EventActivated {
		if ps, err := ip.prp.Version(ev.Version); err == nil {
			ip.analyser.LoadPolicy(ps)
			_ = ip.analyser.VerifyPolicyAnchor()
		}
	}
	if alert, ok := pap.MonitorEvent(ev); ok {
		ip.monitor.PublishPolicyEvent(alert)
	}
}

// catchUp syncs the node with the first reachable chain peer, retrying
// while peer processes are still dialing. One log line reports the batched
// range-sync economics: blocks fetched vs transport Calls spent. The
// counters are the node's lifetime totals, not a delta — a gossiped block
// can trigger the same batched pull through orphan resolution before (or
// while) this goroutine runs, and that work is part of the rejoin too.
func catchUp(node *blockchain.Node, peers []string, delay time.Duration, logf func(string, ...any), done <-chan struct{}, synced chan<- struct{}) {
	defer close(synced)
	if delay > 0 {
		select {
		case <-done:
			return
		case <-time.After(delay):
		}
	}
	for attempt := 0; attempt < 240; attempt++ {
		for _, p := range peers {
			if p == node.Name() {
				continue
			}
			if err := node.SyncFrom(p); err == nil {
				st := node.Stats()
				logf("caught up to height %d from %s: %d blocks in %d sync calls",
					node.Chain().Height(), p, st.SyncBlocks, st.SyncCalls)
				return
			}
		}
		select {
		case <-done:
			return
		case <-time.After(500 * time.Millisecond):
		}
	}
	logf("catch-up: no chain peer reachable; relying on gossip")
}

// pushPolicyFile publishes the -policy-file update once the local chain
// reaches the trigger height, then waits for the local flip.
func pushPolicyFile(node *blockchain.Node, papID *crypto.Identity, watcher *pap.Watcher,
	cfg daemonConfig, logf func(string, ...any), done <-chan struct{}) {
	raw, err := os.ReadFile(cfg.policyFile)
	if err != nil {
		logf("policy push FAILED: %v", err)
		return
	}
	ps, err := xacml.DecodePolicySet(raw)
	if err != nil {
		logf("policy push FAILED: %s does not parse: %v", cfg.policyFile, err)
		return
	}
	for node.Chain().Height() < cfg.policyAtHeight {
		select {
		case <-done:
			return
		case <-time.After(100 * time.Millisecond):
		}
	}
	admin := pap.NewAdmin(node, papID)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	prop, err := admin.UpdatePolicy(ctx, ps, pap.UpdateOptions{ActivateDelta: cfg.policyDelta})
	if err != nil {
		logf("policy push FAILED: %v", err)
		return
	}
	logf("policy %s pushed (digest %s), fleet activates at height %d",
		prop.Version, prop.Digest.Short(), prop.ActivateHeight)
	if err := watcher.WaitForVersion(ctx, prop.Version); err != nil {
		logf("policy push: local flip not observed: %v", err)
	}
}

// driveRequests issues access decisions through the local PEP, retrying
// until the remote PDP is reachable and the policy is active. With
// -request-every it keeps going until shutdown, logging each decision with
// the policy version it was made under — the observable trace of a
// fleet-wide policy flip.
func driveRequests(pep *federation.PEPService, cfg daemonConfig, logf func(string, ...any), done <-chan struct{}) {
	tenantDigest := crypto.SumAll([]byte(cfg.tenant))
	ids := idgen.NewSeeded(cfg.seed ^ binary.BigEndian.Uint64(tenantDigest[:8]))
	roles := []string{"doctor", "nurse", "intern"}
	decideOnce := func(i int, retries int) bool {
		role := roles[i%len(roles)]
		req := xacml.NewRequest(ids.Next().String()).
			Add(xacml.CatSubject, "role", xacml.String(role)).
			Add(xacml.CatAction, "op", xacml.String("read")).
			Add(xacml.CatResource, "type", xacml.String("record"))
		for attempt := 0; ; attempt++ {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			enf, err := pep.Decide(ctx, req)
			cancel()
			if err == nil {
				logf("decision req=%s role=%s decision=%v policy=%s",
					req.ID, role, enf.Decision, enf.PolicyVersion)
				return true
			}
			if attempt >= retries {
				logf("decision req=%s FAILED: %v", req.ID, err)
				return false
			}
			select {
			case <-done:
				return false
			case <-time.After(500 * time.Millisecond):
			}
		}
	}
	for i := 0; i < cfg.requests; i++ {
		decideOnce(i, 60)
	}
	if cfg.requests > 0 {
		logf("drove %d decisions", cfg.requests)
	}
	if cfg.requestEvery <= 0 {
		return
	}
	// Continuous mode: always the doctor-read probe (index 0), so the
	// decision stream flips visibly when a policy update lands.
	for i := 0; ; i++ {
		select {
		case <-done:
			return
		case <-time.After(cfg.requestEvery):
		}
		decideOnce(0, 20)
	}
}

// ---------------------------------------------------------------------------
// Cluster-sim mode (the original behaviour).

func runClusterSim(nodes, difficulty int, height uint64, latency time.Duration) error {
	var seed [32]byte
	seed[0] = 1
	writer := crypto.NewIdentityFromSeed("writer", seed)

	registry := contract.NewRegistry()
	registry.MustRegister(core.NewLogMatchContract(core.MatchConfig{TimeoutBlocks: 1 << 20}))
	registry.MustRegister(&contract.KVContract{ContractName: "kv"})
	registry.MustRegister(&contract.AnchorContract{ContractName: "anchor"})

	net := netsim.New(netsim.Config{BaseLatency: latency, Jitter: latency, Seed: 11})
	defer net.Close()

	chainCfg := blockchain.Config{
		Difficulty: uint8(difficulty),
		Identities: []crypto.PublicIdentity{writer.Public()},
		Registry:   registry,
	}
	var cluster []*blockchain.Node
	var names []string
	for i := 0; i < nodes; i++ {
		names = append(names, fmt.Sprintf("node-%d", i))
	}
	for i := 0; i < nodes; i++ {
		n, err := blockchain.NewNode(blockchain.NodeConfig{
			Name:               names[i],
			Chain:              chainCfg,
			Network:            net,
			Peers:              names,
			Mine:               i == 0, // designated producer
			EmptyBlockInterval: 20 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		defer n.Stop()
		cluster = append(cluster, n)
		n.Start()
	}
	fmt.Printf("cluster of %d nodes, difficulty %d bits, producer node-0\n", nodes, difficulty)

	// Feed a stream of kv transactions while the chain grows.
	sender := blockchain.NewSender(cluster[0], writer)
	go func() {
		for i := 0; ; i++ {
			raw, err := json.Marshal(contract.KVArgs{Key: fmt.Sprintf("k%d", i), Value: []byte("v")})
			if err != nil {
				return
			}
			if _, err := sender.Send(contract.Call{Contract: "kv", Method: "put", Args: raw}); err != nil {
				return
			}
			time.Sleep(25 * time.Millisecond)
		}
	}()

	waitHeight := func(h uint64, timeout time.Duration) error {
		deadline := time.Now().Add(timeout)
		for time.Now().Before(deadline) {
			if cluster[0].Chain().Height() >= h {
				return nil
			}
			time.Sleep(10 * time.Millisecond)
		}
		return fmt.Errorf("timeout waiting for height %d (at %d)", h, cluster[0].Chain().Height())
	}

	if err := waitHeight(height/2, 2*time.Minute); err != nil {
		return err
	}
	fmt.Printf("reached height %d — injecting partition {node-0} | {rest}\n", cluster[0].Chain().Height())
	rest := names[1:]
	net.Partition(names[:1], rest)
	time.Sleep(500 * time.Millisecond)
	fmt.Println("healing partition")
	net.Heal()
	for _, n := range cluster[1:] {
		if err := n.SyncFrom(names[0]); err != nil {
			fmt.Printf("  %s sync: %v\n", n.Name(), err)
		}
	}

	if err := waitHeight(height, 5*time.Minute); err != nil {
		return err
	}

	// Convergence check.
	deadline := time.Now().Add(time.Minute)
	for {
		base := cluster[0].Chain().StateDigest()
		ok := true
		for _, n := range cluster[1:] {
			if n.Chain().StateDigest() != base {
				ok = false
				break
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("nodes did not converge")
		}
		time.Sleep(20 * time.Millisecond)
	}

	fmt.Println()
	fmt.Printf("%-8s %-8s %-10s %-10s %s\n", "node", "height", "mined", "accepted", "state-digest")
	for _, n := range cluster {
		st := n.Stats()
		fmt.Printf("%-8s %-8d %-10d %-10d %s\n",
			n.Name(), n.Chain().Height(), st.BlocksMined, st.BlocksAccepted,
			n.Chain().StateDigest().Short())
	}
	ns := net.Stats()
	fmt.Printf("\nnetwork: sent=%d delivered=%d dropped=%d bytes=%d\n", ns.Sent, ns.Delivered, ns.Dropped, ns.Bytes)
	fmt.Println("cluster converged ✓")
	return nil
}
