// Package comp exercises the lockheld analyzer.
package comp

import (
	"io"
	"sync"

	"fix/internal/transport"
)

// Broker holds blocking operations under its mutex.
type Broker struct {
	mu    sync.Mutex
	peer  transport.Endpoint
	sink  io.Writer
	queue chan []byte
	last  []byte
}

// Publish blocks on a channel and the wire while holding the lock.
func (b *Broker) Publish(payload []byte) error {
	b.mu.Lock()
	b.last = payload
	b.queue <- payload                        // want "channel send while b.mu is held"
	_, err := b.peer.Call("publish", payload) // want "transport Call while b.mu is held"
	b.mu.Unlock()
	return err
}

// Dump writes to an interface writer under a deferred unlock.
func (b *Broker) Dump() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sink.Write(b.last) // want "io.Writer Write while b.mu is held"
}
