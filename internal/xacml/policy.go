package xacml

import (
	"encoding/json"
	"fmt"

	"drams/internal/crypto"
)

// Effect is the outcome a rule prescribes.
type Effect uint8

// Rule effects.
const (
	EffectPermit Effect = iota + 1
	EffectDeny
)

// String implements fmt.Stringer.
func (e Effect) String() string {
	switch e {
	case EffectPermit:
		return "Permit"
	case EffectDeny:
		return "Deny"
	default:
		return fmt.Sprintf("Effect(%d)", uint8(e))
	}
}

// Decision is the six-valued XACML 3.0 decision lattice: the three
// Indeterminate flavours record which effects the failed evaluation could
// have produced, which the standard combining algorithms depend on (§7.19).
type Decision uint8

// Decisions.
const (
	NotApplicable Decision = iota + 1
	Permit
	Deny
	IndeterminateP  // could only have been Permit
	IndeterminateD  // could only have been Deny
	IndeterminateDP // could have been either
)

// String implements fmt.Stringer.
func (d Decision) String() string {
	switch d {
	case NotApplicable:
		return "NotApplicable"
	case Permit:
		return "Permit"
	case Deny:
		return "Deny"
	case IndeterminateP:
		return "Indeterminate{P}"
	case IndeterminateD:
		return "Indeterminate{D}"
	case IndeterminateDP:
		return "Indeterminate{DP}"
	default:
		return fmt.Sprintf("Decision(%d)", uint8(d))
	}
}

// IsIndeterminate reports whether d is any Indeterminate flavour.
func (d Decision) IsIndeterminate() bool {
	return d == IndeterminateP || d == IndeterminateD || d == IndeterminateDP
}

// Simple collapses the extended lattice to the four externally visible
// decisions (what a PEP acts upon).
func (d Decision) Simple() Decision {
	if d.IsIndeterminate() {
		return IndeterminateDP
	}
	return d
}

// indeterminateFor maps an effect to its Indeterminate flavour.
func indeterminateFor(e Effect) Decision {
	if e == EffectPermit {
		return IndeterminateP
	}
	return IndeterminateD
}

// CombiningAlg names a combining algorithm.
type CombiningAlg string

// The six standard combining algorithms.
const (
	DenyOverrides     CombiningAlg = "deny-overrides"
	PermitOverrides   CombiningAlg = "permit-overrides"
	FirstApplicable   CombiningAlg = "first-applicable"
	OnlyOneApplicable CombiningAlg = "only-one-applicable"
	DenyUnlessPermit  CombiningAlg = "deny-unless-permit"
	PermitUnlessDeny  CombiningAlg = "permit-unless-deny"
)

// CombiningAlgs lists all supported algorithms.
func CombiningAlgs() []CombiningAlg {
	return []CombiningAlg{DenyOverrides, PermitOverrides, FirstApplicable,
		OnlyOneApplicable, DenyUnlessPermit, PermitUnlessDeny}
}

// Obligation is an action the PEP must fulfil alongside enforcing the
// decision.
type Obligation struct {
	ID        string            `json:"id"`
	FulfillOn Effect            `json:"fulfillOn"`
	Params    map[string]string `json:"params,omitempty"`
}

// Rule is the atomic policy element.
type Rule struct {
	ID        string
	Effect    Effect
	Target    Target
	Condition Expr // nil means "true"
	Obligs    []Obligation
}

// Evaluate computes the rule's decision per XACML 3.0 §7.11 (table 4).
func (ru *Rule) Evaluate(r *Request) Decision {
	switch ru.Target.Evaluate(r) {
	case MatchNo:
		return NotApplicable
	case MatchIndeterminate:
		return indeterminateFor(ru.Effect)
	}
	if ru.Condition == nil {
		if ru.Effect == EffectPermit {
			return Permit
		}
		return Deny
	}
	ok, err := ru.Condition.Eval(r)
	if err != nil {
		return indeterminateFor(ru.Effect)
	}
	if !ok {
		return NotApplicable
	}
	if ru.Effect == EffectPermit {
		return Permit
	}
	return Deny
}

// ruleJSON is the serialisable form of Rule (Condition is polymorphic).
type ruleJSON struct {
	ID        string          `json:"id"`
	Effect    Effect          `json:"effect"`
	Target    Target          `json:"target"`
	Condition json.RawMessage `json:"condition,omitempty"`
	Obligs    []Obligation    `json:"obligations,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (ru *Rule) MarshalJSON() ([]byte, error) {
	cond, err := MarshalExpr(ru.Condition)
	if err != nil {
		return nil, err
	}
	rj := ruleJSON{ID: ru.ID, Effect: ru.Effect, Target: ru.Target, Obligs: ru.Obligs}
	if string(cond) != "null" {
		rj.Condition = cond
	}
	return json.Marshal(rj)
}

// UnmarshalJSON implements json.Unmarshaler.
func (ru *Rule) UnmarshalJSON(data []byte) error {
	var rj ruleJSON
	if err := json.Unmarshal(data, &rj); err != nil {
		return fmt.Errorf("xacml: unmarshal rule: %w", err)
	}
	cond, err := UnmarshalExpr(rj.Condition)
	if err != nil {
		return err
	}
	*ru = Rule{ID: rj.ID, Effect: rj.Effect, Target: rj.Target, Condition: cond, Obligs: rj.Obligs}
	return nil
}

// Policy groups rules under a target and a rule-combining algorithm.
type Policy struct {
	ID      string       `json:"id"`
	Version string       `json:"version"`
	Target  Target       `json:"target"`
	Alg     CombiningAlg `json:"alg"`
	Rules   []*Rule      `json:"rules"`
	Obligs  []Obligation `json:"obligations,omitempty"`
}

// Evaluate computes the policy decision per XACML 3.0 §7.12/§7.13.
func (p *Policy) Evaluate(r *Request) Decision {
	switch p.Target.Evaluate(r) {
	case MatchNo:
		return NotApplicable
	case MatchIndeterminate:
		return targetIndeterminate(p.combineRules(r))
	}
	return p.combineRules(r)
}

func (p *Policy) combineRules(r *Request) Decision {
	decisions := make([]Decision, len(p.Rules))
	evaluated := false
	lazy := func(i int) Decision {
		if !evaluated {
			for j, ru := range p.Rules {
				decisions[j] = ru.Evaluate(r)
			}
			evaluated = true
		}
		return decisions[i]
	}
	return combine(p.Alg, len(p.Rules), lazy)
}

// PolicyItem is one child of a PolicySet: exactly one of Policy / Set is
// non-nil.
type PolicyItem struct {
	Policy *Policy    `json:"policy,omitempty"`
	Set    *PolicySet `json:"set,omitempty"`
}

// Evaluate dispatches to the non-nil child.
func (pi PolicyItem) Evaluate(r *Request) Decision {
	if pi.Policy != nil {
		return pi.Policy.Evaluate(r)
	}
	if pi.Set != nil {
		return pi.Set.Evaluate(r)
	}
	return NotApplicable
}

// matchTarget exposes the child's target match, used by only-one-applicable.
func (pi PolicyItem) matchTarget(r *Request) MatchResult {
	if pi.Policy != nil {
		return pi.Policy.Target.Evaluate(r)
	}
	if pi.Set != nil {
		return pi.Set.Target.Evaluate(r)
	}
	return MatchNo
}

// ID returns the child's identifier.
func (pi PolicyItem) ID() string {
	if pi.Policy != nil {
		return pi.Policy.ID
	}
	if pi.Set != nil {
		return pi.Set.ID
	}
	return ""
}

// PolicySet groups policies/policy sets under a policy-combining algorithm.
type PolicySet struct {
	ID      string       `json:"id"`
	Version string       `json:"version"`
	Target  Target       `json:"target"`
	Alg     CombiningAlg `json:"alg"`
	Items   []PolicyItem `json:"items"`
	Obligs  []Obligation `json:"obligations,omitempty"`
}

// Evaluate computes the policy-set decision.
func (ps *PolicySet) Evaluate(r *Request) Decision {
	switch ps.Target.Evaluate(r) {
	case MatchNo:
		return NotApplicable
	case MatchIndeterminate:
		return targetIndeterminate(ps.combineItems(r))
	}
	return ps.combineItems(r)
}

func (ps *PolicySet) combineItems(r *Request) Decision {
	if ps.Alg == OnlyOneApplicable {
		return ps.onlyOneApplicable(r)
	}
	decisions := make([]Decision, len(ps.Items))
	evaluated := false
	lazy := func(i int) Decision {
		if !evaluated {
			for j := range ps.Items {
				decisions[j] = ps.Items[j].Evaluate(r)
			}
			evaluated = true
		}
		return decisions[i]
	}
	return combine(ps.Alg, len(ps.Items), lazy)
}

// onlyOneApplicable implements XACML 3.0 §C.9 on child targets.
func (ps *PolicySet) onlyOneApplicable(r *Request) Decision {
	selected := -1
	for i := range ps.Items {
		switch ps.Items[i].matchTarget(r) {
		case MatchIndeterminate:
			return IndeterminateDP
		case MatchYes:
			if selected >= 0 {
				return IndeterminateDP // more than one applicable
			}
			selected = i
		}
	}
	if selected < 0 {
		return NotApplicable
	}
	return ps.Items[selected].Evaluate(r)
}

// targetIndeterminate converts a combined decision into the policy value
// when the policy target itself was Indeterminate (XACML 3.0 table 7).
func targetIndeterminate(combined Decision) Decision {
	switch combined {
	case Permit:
		return IndeterminateP
	case Deny:
		return IndeterminateD
	case NotApplicable:
		return NotApplicable
	default:
		return combined // already an Indeterminate flavour
	}
}

// combine dispatches the shared (rule/policy) combining algorithms over n
// children accessed through get.
func combine(alg CombiningAlg, n int, get func(int) Decision) Decision {
	switch alg {
	case DenyOverrides:
		return denyOverrides(n, get)
	case PermitOverrides:
		return permitOverrides(n, get)
	case FirstApplicable:
		return firstApplicable(n, get)
	case DenyUnlessPermit:
		for i := 0; i < n; i++ {
			if get(i) == Permit {
				return Permit
			}
		}
		return Deny
	case PermitUnlessDeny:
		for i := 0; i < n; i++ {
			if get(i) == Deny {
				return Deny
			}
		}
		return Permit
	case OnlyOneApplicable:
		// Only valid at policy-set level; handled there. Rule-level use is
		// a policy-authoring error surfaced as Indeterminate.
		return IndeterminateDP
	default:
		return IndeterminateDP
	}
}

// denyOverrides implements XACML 3.0 §C.2/§C.6.
func denyOverrides(n int, get func(int) Decision) Decision {
	var anyIndetD, anyIndetP, anyIndetDP, anyPermit bool
	for i := 0; i < n; i++ {
		switch get(i) {
		case Deny:
			return Deny
		case Permit:
			anyPermit = true
		case IndeterminateD:
			anyIndetD = true
		case IndeterminateP:
			anyIndetP = true
		case IndeterminateDP:
			anyIndetDP = true
		}
	}
	switch {
	case anyIndetDP:
		return IndeterminateDP
	case anyIndetD && (anyIndetP || anyPermit):
		return IndeterminateDP
	case anyIndetD:
		return IndeterminateD
	case anyPermit:
		return Permit
	case anyIndetP:
		return IndeterminateP
	default:
		return NotApplicable
	}
}

// permitOverrides implements XACML 3.0 §C.3/§C.7.
func permitOverrides(n int, get func(int) Decision) Decision {
	var anyIndetD, anyIndetP, anyIndetDP, anyDeny bool
	for i := 0; i < n; i++ {
		switch get(i) {
		case Permit:
			return Permit
		case Deny:
			anyDeny = true
		case IndeterminateD:
			anyIndetD = true
		case IndeterminateP:
			anyIndetP = true
		case IndeterminateDP:
			anyIndetDP = true
		}
	}
	switch {
	case anyIndetDP:
		return IndeterminateDP
	case anyIndetP && (anyIndetD || anyDeny):
		return IndeterminateDP
	case anyIndetP:
		return IndeterminateP
	case anyDeny:
		return Deny
	case anyIndetD:
		return IndeterminateD
	default:
		return NotApplicable
	}
}

// firstApplicable implements XACML 3.0 §C.8.
func firstApplicable(n int, get func(int) Decision) Decision {
	for i := 0; i < n; i++ {
		switch d := get(i); d {
		case NotApplicable:
			continue
		case Permit, Deny:
			return d
		default:
			return IndeterminateDP
		}
	}
	return NotApplicable
}

// Encode serialises the policy set as canonical JSON.
func (ps *PolicySet) Encode() []byte {
	b, err := json.Marshal(ps)
	if err != nil {
		panic(fmt.Sprintf("xacml: encode policy set: %v", err))
	}
	return b
}

// DecodePolicySet parses a JSON policy set.
func DecodePolicySet(data []byte) (*PolicySet, error) {
	var ps PolicySet
	if err := json.Unmarshal(data, &ps); err != nil {
		return nil, fmt.Errorf("xacml: decode policy set: %w", err)
	}
	return &ps, nil
}

// Digest returns the canonical content digest of the policy set; the PAP
// anchors this on-chain and the monitor compares it against the digest the
// PDP reports having evaluated (check M6).
func (ps *PolicySet) Digest() crypto.Digest {
	return crypto.Sum(ps.Encode())
}

// Clone deep-copies the policy set via serialisation.
func (ps *PolicySet) Clone() *PolicySet {
	out, err := DecodePolicySet(ps.Encode())
	if err != nil {
		panic(fmt.Sprintf("xacml: clone policy set: %v", err))
	}
	return out
}

// CollectObligations walks the evaluation path for a final decision and
// returns the obligations to fulfil: every obligation (at set, policy and
// rule level) whose FulfillOn matches the decision effect, from elements
// that produced that effect. This is the XACML §7.18 behaviour restricted
// to our subset.
func (ps *PolicySet) CollectObligations(r *Request, final Decision) []Obligation {
	var eff Effect
	switch final {
	case Permit:
		eff = EffectPermit
	case Deny:
		eff = EffectDeny
	default:
		return nil
	}
	var out []Obligation
	ps.collectObl(r, eff, &out)
	return out
}

func (ps *PolicySet) collectObl(r *Request, eff Effect, out *[]Obligation) {
	if decisionEffect(ps.Evaluate(r)) != eff {
		return
	}
	for _, o := range ps.Obligs {
		if o.FulfillOn == eff {
			*out = append(*out, o)
		}
	}
	for _, item := range ps.Items {
		if item.Policy != nil {
			item.Policy.collectObl(r, eff, out)
		}
		if item.Set != nil {
			item.Set.collectObl(r, eff, out)
		}
	}
}

func (p *Policy) collectObl(r *Request, eff Effect, out *[]Obligation) {
	if decisionEffect(p.Evaluate(r)) != eff {
		return
	}
	for _, o := range p.Obligs {
		if o.FulfillOn == eff {
			*out = append(*out, o)
		}
	}
	for _, ru := range p.Rules {
		if decisionEffect(ru.Evaluate(r)) != eff {
			continue
		}
		for _, o := range ru.Obligs {
			if o.FulfillOn == eff {
				*out = append(*out, o)
			}
		}
	}
}

func decisionEffect(d Decision) Effect {
	switch d {
	case Permit:
		return EffectPermit
	case Deny:
		return EffectDeny
	default:
		return 0
	}
}
