// Federation: a realistic healthcare data-sharing scenario on a three-cloud
// FaaS federation — the workload class the paper's introduction motivates
// (partner organisations sharing data under each owner's policies).
//
// It demonstrates:
//
//   - a richer XACML policy: role/resource targets, an office-hours
//     condition, an audit obligation;
//
//   - traffic from three hospitals' tenants, all matched on-chain;
//
//   - a policy update, its on-chain anchoring, and the analyser's formal
//     change-impact report (which requests changed decision and how).
//
//     go run ./examples/federation
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"drams"
	"drams/internal/analysis"
	"drams/internal/federation"
	"drams/internal/xacml"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "federation example:", err)
		os.Exit(1)
	}
}

func match(cat xacml.Category, id xacml.AttributeID, v string) xacml.Match {
	return xacml.Match{Op: xacml.CmpEq, Attr: xacml.Designator{Cat: cat, ID: id}, Lit: xacml.String(v)}
}

func target(ms ...xacml.Match) xacml.Target {
	return xacml.Target{AnyOf: []xacml.AnyOf{{AllOf: []xacml.AllOf{{Matches: ms}}}}}
}

// healthPolicy v1: doctors read/write patient records; lab technicians read
// lab results during office hours (8–18); every permit carries an audit
// obligation; everything else is denied.
func healthPolicy(version string) *xacml.PolicySet {
	officeHours := &xacml.AndExpr{Args: []xacml.Expr{
		&xacml.CmpExpr{Op: xacml.CmpGe,
			Attr: xacml.Designator{Cat: xacml.CatEnvironment, ID: "hour"}, Lit: xacml.Int(8)},
		&xacml.CmpExpr{Op: xacml.CmpLt,
			Attr: xacml.Designator{Cat: xacml.CatEnvironment, ID: "hour"}, Lit: xacml.Int(18)},
	}}
	rules := []*xacml.Rule{
		{
			ID: "doctor-records", Effect: xacml.EffectPermit,
			Target: target(
				match(xacml.CatSubject, "role", "doctor"),
				match(xacml.CatResource, "type", "patient-record"),
			),
			Obligs: []xacml.Obligation{{ID: "audit-access", FulfillOn: xacml.EffectPermit,
				Params: map[string]string{"sink": "hospital-audit-log"}}},
		},
		{
			ID: "lab-tech-results", Effect: xacml.EffectPermit,
			Target: target(
				match(xacml.CatSubject, "role", "lab-tech"),
				match(xacml.CatResource, "type", "lab-result"),
				match(xacml.CatAction, "op", "read"),
			),
			Condition: officeHours,
		},
		{ID: "default-deny", Effect: xacml.EffectDeny},
	}
	return &xacml.PolicySet{ID: "health-federation", Version: version, Alg: xacml.DenyUnlessPermit,
		Items: []xacml.PolicyItem{{Policy: &xacml.Policy{
			ID: "sharing-policy", Version: "1", Alg: xacml.FirstApplicable, Rules: rules}}}}
}

func run() error {
	topology := federation.SimpleTopology("health-federation", 3)
	dep, err := drams.Open(healthPolicy("v1"),
		drams.WithTopology(topology),
		drams.WithDifficulty(8),
		drams.WithTimeoutBlocks(30),
		drams.WithEmptyBlockInterval(20*time.Millisecond),
		drams.WithSeed(99),
	)
	if err != nil {
		return err
	}
	defer dep.Close()

	fmt.Println("three-hospital federation deployed:")
	for _, c := range topology.Clouds {
		fmt.Printf("  %s (%s): tenants %v\n", c.Name, c.Section, names(topology.TenantsOnCloud(c.Name)))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	type caseReq struct {
		who, tenant string
		build       func(*xacml.Request)
		want        xacml.Decision
	}
	cases := []caseReq{
		{"doctor reads a record (hospital 1)", "tenant-1", func(r *xacml.Request) {
			r.Add(xacml.CatSubject, "role", xacml.String("doctor"))
			r.Add(xacml.CatResource, "type", xacml.String("patient-record"))
			r.Add(xacml.CatAction, "op", xacml.String("read"))
		}, xacml.Permit},
		{"lab tech reads results at 10:00 (hospital 2)", "tenant-2", func(r *xacml.Request) {
			r.Add(xacml.CatSubject, "role", xacml.String("lab-tech"))
			r.Add(xacml.CatResource, "type", xacml.String("lab-result"))
			r.Add(xacml.CatAction, "op", xacml.String("read"))
			r.Add(xacml.CatEnvironment, "hour", xacml.Int(10))
		}, xacml.Permit},
		{"lab tech reads results at 23:00 (hospital 2)", "tenant-2", func(r *xacml.Request) {
			r.Add(xacml.CatSubject, "role", xacml.String("lab-tech"))
			r.Add(xacml.CatResource, "type", xacml.String("lab-result"))
			r.Add(xacml.CatAction, "op", xacml.String("read"))
			r.Add(xacml.CatEnvironment, "hour", xacml.Int(23))
		}, xacml.Deny},
		{"admin tries a record (hospital 3)", "tenant-3", func(r *xacml.Request) {
			r.Add(xacml.CatSubject, "role", xacml.String("admin"))
			r.Add(xacml.CatResource, "type", xacml.String("patient-record"))
		}, xacml.Deny},
	}

	fmt.Println("\ntraffic:")
	for _, c := range cases {
		client, err := dep.Client(c.tenant)
		if err != nil {
			return err
		}
		req := client.NewRequest()
		c.build(req)
		enf, err := client.Decide(ctx, req)
		if err != nil {
			return err
		}
		status := "✓"
		if enf.Decision != c.want {
			status = fmt.Sprintf("✗ (want %s)", c.want)
		}
		obls := ""
		if len(enf.Obligations) > 0 {
			obls = fmt.Sprintf("  [obligation: %s]", enf.Obligations[0].ID)
		}
		fmt.Printf("  %-46s → %-6s %s%s\n", c.who, enf.Decision, status, obls)
		if err := dep.WaitForMatched(ctx, req.ID); err != nil {
			return fmt.Errorf("%s: %w", c.who, err)
		}
	}
	fmt.Println("  every exchange matched on-chain; zero alerts")

	// Policy update: v2 lets nurses read patient records. Before rolling it
	// out, run the analyser's change-impact analysis (ref [8]).
	v2 := healthPolicy("v2")
	nurseRule := &xacml.Rule{
		ID: "nurse-records", Effect: xacml.EffectPermit,
		Target: target(
			match(xacml.CatSubject, "role", "nurse"),
			match(xacml.CatResource, "type", "patient-record"),
			match(xacml.CatAction, "op", "read"),
		),
	}
	pol := v2.Items[0].Policy
	pol.Rules = append([]*xacml.Rule{nurseRule}, pol.Rules...)

	fmt.Println("\nformal policy analysis before rollout (ref [8] machinery):")
	comp := analysis.CheckCompleteness(analysis.Compile(v2), analysis.ExtractDomain(v2), analysis.DefaultEnumParams())
	fmt.Printf("  completeness: every abstract request decided Permit/Deny? %v (checked %d)\n",
		comp.Complete, comp.Checked)
	red := analysis.CheckRedundancy(v2, analysis.DefaultEnumParams())
	fmt.Printf("  redundant rules: %v\n", red.RedundantRules)

	fmt.Println("\nchange-impact analysis v1 → v2 (nurses gain read access):")
	report := analysis.ChangeImpact(healthPolicy("v1"), v2, analysis.DefaultEnumParams())
	fmt.Printf("  abstract requests checked: %d, decisions changed: %d\n", report.Checked, report.Differences)
	for i, w := range report.Witnesses {
		if i == 3 {
			fmt.Printf("  ... and %d more\n", report.Differences-3)
			break
		}
		fmt.Printf("  witness: %s\n", w)
	}

	if err := dep.PublishPolicy(v2); err != nil {
		return err
	}
	fmt.Println("\nv2 published: stored in PRP, digest anchored on-chain, PDP and analyser reloaded")

	// Under v2 a ward of nurses reads records: a single pipelined batch
	// through hospital 3's PEP (one network round-trip for all of them).
	ward, err := dep.Client("tenant-3")
	if err != nil {
		return err
	}
	batch := make([]*xacml.Request, 4)
	for i := range batch {
		batch[i] = ward.NewRequest().
			Add(xacml.CatSubject, "role", xacml.String("nurse")).
			Add(xacml.CatResource, "type", xacml.String("patient-record")).
			Add(xacml.CatAction, "op", xacml.String("read"))
	}
	enfs, err := ward.DecideBatch(ctx, batch)
	if err != nil {
		return err
	}
	fmt.Printf("nurse ward batch under v2 → %d requests, all %s\n", len(enfs), enfs[0].Decision)
	for _, req := range batch {
		if err := dep.WaitForMatched(ctx, req.ID); err != nil {
			return err
		}
	}

	st := dep.Monitor.Stats()
	fmt.Printf("\nmonitor: %d logs, %d matched, %d alerts, chain height %d\n",
		st.LogsSeen, st.Matched, st.AlertsSeen, dep.InfraNode().Chain().Height())
	return nil
}

func names(ts []federation.Tenant) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Name
	}
	return out
}
