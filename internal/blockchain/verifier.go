package blockchain

import (
	"container/list"
	"fmt"
	"sync"

	"drams/internal/crypto"
	"drams/internal/metrics"
)

// VerifierConfig tunes a TxVerifier.
type VerifierConfig struct {
	// Workers sizes the worker pool batches are fanned out across
	// (default GOMAXPROCS, via crypto.VerifyBatch).
	Workers int
	// CacheSize bounds the verified-transaction LRU (default 8192;
	// negative disables caching so every call re-verifies).
	CacheSize int
	// Sequential disables both the worker pool and the cache: every
	// signature is checked inline, one at a time. This is the pre-pipeline
	// baseline used by overhead experiments.
	Sequential bool
}

// DefaultVerifyCacheSize is the verified-transaction LRU bound used when
// VerifierConfig.CacheSize is zero.
const DefaultVerifyCacheSize = 8192

// VerifierStats snapshots a TxVerifier's counters.
type VerifierStats struct {
	// Verified counts ed25519 verifications actually performed.
	Verified int64
	// CacheHits counts verifications skipped because the transaction was
	// already verified under the current registry generation.
	CacheHits int64
	// CacheMisses counts cache lookups that fell through to verification.
	CacheMisses int64
	// Batches counts VerifyBatch calls.
	Batches int64
	// Failures counts transactions that failed verification.
	Failures int64
}

// TxVerifier verifies transaction signatures against an IdentityRegistry.
// It fans batches out across a worker pool (block validation, batched
// mempool admission) and remembers recently verified transaction IDs so
// gossip duplicates and block validation skip re-verification: a
// transaction admitted to the mempool is not re-verified when its block
// arrives. Cached entries are tagged with the registry generation, so a
// membership change invalidates them. Safe for concurrent use.
type TxVerifier struct {
	ids        *IdentityRegistry
	workers    int
	sequential bool
	cache      *verifiedSet // nil when disabled

	verified metrics.Counter
	hits     metrics.Counter
	misses   metrics.Counter
	batches  metrics.Counter
	failures metrics.Counter
}

// NewTxVerifier builds a verifier over the registry.
func NewTxVerifier(ids *IdentityRegistry, cfg VerifierConfig) *TxVerifier {
	v := &TxVerifier{ids: ids, workers: cfg.Workers, sequential: cfg.Sequential}
	if !cfg.Sequential && cfg.CacheSize >= 0 {
		size := cfg.CacheSize
		if size == 0 {
			size = DefaultVerifyCacheSize
		}
		v.cache = newVerifiedSet(size)
	}
	return v
}

// Stats snapshots the verifier counters.
func (v *TxVerifier) Stats() VerifierStats {
	return VerifierStats{
		Verified:    v.verified.Value(),
		CacheHits:   v.hits.Value(),
		CacheMisses: v.misses.Value(),
		Batches:     v.batches.Value(),
		Failures:    v.failures.Value(),
	}
}

// VerifyTx verifies one transaction, consulting and feeding the
// verified-tx cache. The transaction ID covers payload, public key and
// signature, so a cache hit proves this exact signed transaction was
// already verified.
func (v *TxVerifier) VerifyTx(tx *Transaction) error {
	if v.sequential {
		return v.ids.VerifyTx(tx)
	}
	gen := v.ids.Generation()
	id := tx.ID()
	if v.cache != nil {
		if v.cache.has(id, gen) {
			v.hits.Inc()
			return nil
		}
		v.misses.Inc()
	}
	check, err := v.ids.sigCheck(tx)
	if err != nil {
		v.failures.Inc()
		return err
	}
	v.verified.Inc()
	if !check.Verify() {
		v.failures.Inc()
		return fmt.Errorf("%w: from %q", ErrBadSignature, tx.From)
	}
	if v.cache != nil {
		v.cache.add(id, gen)
	}
	return nil
}

// VerifyBatch verifies a batch of transactions and returns one error per
// transaction, index-aligned (nil = valid). Cached transactions are skipped;
// the rest are fanned out across the worker pool in a single
// crypto.VerifyBatch call.
func (v *TxVerifier) VerifyBatch(txs []Transaction) []error {
	errs := make([]error, len(txs))
	if v.sequential {
		for i := range txs {
			errs[i] = v.ids.VerifyTx(&txs[i])
		}
		return errs
	}
	v.batches.Inc()
	gen := v.ids.Generation()

	// Cache pass + cheap registry checks; collect the expensive ed25519
	// verifications that remain.
	pending := make([]int, 0, len(txs))
	checks := make([]crypto.SigCheck, 0, len(txs))
	ids := make([]crypto.Digest, len(txs))
	for i := range txs {
		ids[i] = txs[i].ID()
		if v.cache != nil && v.cache.has(ids[i], gen) {
			v.hits.Inc()
			continue
		}
		if v.cache != nil {
			v.misses.Inc()
		}
		check, err := v.ids.sigCheck(&txs[i])
		if err != nil {
			v.failures.Inc()
			errs[i] = err
			continue
		}
		pending = append(pending, i)
		checks = append(checks, check)
	}
	if len(checks) == 0 {
		return errs
	}
	v.verified.Add(int64(len(checks)))
	ok := crypto.VerifyBatch(v.workers, checks)
	for j, i := range pending {
		if !ok[j] {
			v.failures.Inc()
			errs[i] = fmt.Errorf("%w: from %q", ErrBadSignature, txs[i].From)
			continue
		}
		if v.cache != nil {
			v.cache.add(ids[i], gen)
		}
	}
	return errs
}

// VerifyAll verifies a batch and returns the first failure annotated with
// its transaction index (block-validation style), or nil if all are valid.
func (v *TxVerifier) VerifyAll(txs []Transaction) error {
	for i, err := range v.VerifyBatch(txs) {
		if err != nil {
			return fmt.Errorf("tx %d: %w", i, err)
		}
	}
	return nil
}

// verifiedSetShards is the stripe count of the verified-tx LRU; digests are
// uniform, so the first key byte picks the shard.
const verifiedSetShards = 16

// verifiedSet is a lock-striped LRU set of (transaction ID, registry
// generation) pairs.
type verifiedSet struct {
	shards   [verifiedSetShards]verifiedShard
	perShard int
}

type verifiedShard struct {
	mu    sync.Mutex
	order *list.List                     // front = most recent; values are crypto.Digest
	items map[crypto.Digest]*verifiedEnt // by tx ID
}

type verifiedEnt struct {
	gen  uint64
	elem *list.Element
}

func newVerifiedSet(size int) *verifiedSet {
	per := size / verifiedSetShards
	if per < 1 {
		per = 1
	}
	s := &verifiedSet{perShard: per}
	for i := range s.shards {
		s.shards[i].order = list.New()
		s.shards[i].items = make(map[crypto.Digest]*verifiedEnt, per)
	}
	return s
}

func (s *verifiedSet) shard(id crypto.Digest) *verifiedShard {
	return &s.shards[id[0]%verifiedSetShards]
}

// has reports whether id was verified under the given registry generation,
// refreshing its recency on a hit. A stale-generation entry is evicted.
func (s *verifiedSet) has(id crypto.Digest, gen uint64) bool {
	sh := s.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ent, ok := sh.items[id]
	if !ok {
		return false
	}
	if ent.gen != gen {
		sh.order.Remove(ent.elem)
		delete(sh.items, id)
		return false
	}
	sh.order.MoveToFront(ent.elem)
	return true
}

// add records a successful verification, evicting the least recently used
// entry when the shard is full.
func (s *verifiedSet) add(id crypto.Digest, gen uint64) {
	sh := s.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if ent, ok := sh.items[id]; ok {
		ent.gen = gen
		sh.order.MoveToFront(ent.elem)
		return
	}
	for sh.order.Len() >= s.perShard {
		oldest := sh.order.Back()
		sh.order.Remove(oldest)
		delete(sh.items, oldest.Value.(crypto.Digest))
	}
	sh.items[id] = &verifiedEnt{gen: gen, elem: sh.order.PushFront(id)}
}

// len returns the number of cached verifications (tests only).
func (s *verifiedSet) len() int {
	n := 0
	for i := range s.shards {
		s.shards[i].mu.Lock()
		n += len(s.shards[i].items)
		s.shards[i].mu.Unlock()
	}
	return n
}
