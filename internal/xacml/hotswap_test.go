package xacml

import (
	"sync"
	"testing"
)

// hotswapRequest is the probe request the hammer evaluates: permitted by
// StandardPolicy (doctor-read) and denied by RestrictedPolicy. The record
// id varies with i, spreading the keys across cache shards so Put/Purge
// race on many shards, not one.
func hotswapRequest(i int) *Request {
	return NewRequest("hot").
		Add(CatSubject, "role", String("doctor")).
		Add(CatAction, "op", String("read")).
		Add(CatResource, "type", String("record")).
		Add(CatResource, "id", Int(int64(i%64)))
}

// TestEvaluateDuringLoadConsistency hammers Evaluate from many goroutines
// while another goroutine hot-swaps the policy between a permitting and a
// denying set. Every result must be internally consistent — the decision,
// version and digest of ONE policy snapshot, never a torn mix — and a
// decision computed against one policy must never be cached under (or
// served for) the other's digest. Run under -race this also proves the
// Load/Evaluate window is data-race free.
func TestEvaluateDuringLoadConsistency(t *testing.T) {
	permit := StandardPolicy("v1")
	deny := RestrictedPolicy("v2")
	permitDigest, denyDigest := permit.Digest(), deny.Digest()

	pdp := NewCachedPDP(permit, 1024)

	const (
		hammers   = 8
		evalsEach = 2000
		swaps     = 400
	)
	var wg sync.WaitGroup

	// Swapper: alternate policies as fast as possible.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < swaps; i++ {
			if i%2 == 0 {
				pdp.Load(deny)
			} else {
				pdp.Load(permit)
			}
		}
	}()

	errCh := make(chan error, hammers)
	for w := 0; w < hammers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < evalsEach; i++ {
				res, err := pdp.Evaluate(hotswapRequest(i))
				if err != nil {
					errCh <- err
					return
				}
				switch res.PolicyVersion {
				case "v1":
					if res.Decision != Permit || res.PolicyDigest != permitDigest {
						t.Errorf("torn result under v1: decision=%v digest=%s",
							res.Decision, res.PolicyDigest.Short())
						return
					}
				case "v2":
					if res.Decision != Deny || res.PolicyDigest != denyDigest {
						t.Errorf("torn result under v2: decision=%v digest=%s",
							res.Decision, res.PolicyDigest.Short())
						return
					}
				default:
					t.Errorf("unknown policy version %q", res.PolicyVersion)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Settle on the permitting policy: everything the cache now serves
	// must be a v1 result, regardless of what the in-flight evaluations
	// above tried to park in it.
	pdp.Load(permit)
	for i := 0; i < 64; i++ {
		res, err := pdp.Evaluate(hotswapRequest(i))
		if err != nil {
			t.Fatal(err)
		}
		if res.Decision != Permit || res.PolicyVersion != "v1" || res.PolicyDigest != permitDigest {
			t.Fatalf("post-settle result = %v/%s/%s", res.Decision, res.PolicyVersion, res.PolicyDigest.Short())
		}
	}
}

// TestCacheEpochPinsPut proves the purge-epoch mechanism directly: a Put
// carrying an epoch from before a Purge is discarded, so a hot swap's purge
// is final even with evaluations in flight.
func TestCacheEpochPinsPut(t *testing.T) {
	ps := StandardPolicy("v1")
	req := hotswapRequest(0)
	cache := NewDecisionCache(64)

	epoch := cache.Epoch()
	cache.Purge() // the policy load wins the race
	cache.Put(req.Digest(), ps.Digest(), Result{Decision: Permit}, epoch)
	if cache.Len() != 0 {
		t.Fatal("stale-epoch Put landed after Purge")
	}
	if got := cache.Stats().StalePuts; got != 1 {
		t.Fatalf("stalePuts = %d", got)
	}

	// A current-epoch Put still lands.
	cache.Put(req.Digest(), ps.Digest(), Result{Decision: Permit}, cache.Epoch())
	if cache.Len() != 1 {
		t.Fatal("current-epoch Put rejected")
	}
}
