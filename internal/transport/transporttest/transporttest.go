// Package transporttest is the conformance suite every transport backend
// must pass. It pins down the delivery semantics the rest of DRAMS relies
// on — Send/Broadcast/Call behaviour, sentinel errors across the wire, ctx
// cancellation mid-Call, endpoint crash/restart, and safety under
// concurrent use — so that netsim (in-process simulator) and tcp (real
// sockets) stay interchangeable behind transport.Transport.
package transporttest

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"drams/internal/transport"
)

// Factory builds a universe of n connected transports. For single-process
// backends (netsim) all n entries may be the same Transport; multi-process
// backends return n distinct instances that can reach each other. Cleanup
// is the factory's job (t.Cleanup).
type Factory func(t *testing.T, n int) []transport.Transport

// Run executes the conformance suite against the backend.
func Run(t *testing.T, factory Factory) {
	t.Run("SendDelivers", func(t *testing.T) { testSendDelivers(t, factory) })
	t.Run("SendUnknownAddress", func(t *testing.T) { testSendUnknownAddress(t, factory) })
	t.Run("CallRoundTrip", func(t *testing.T) { testCallRoundTrip(t, factory) })
	t.Run("CallErrors", func(t *testing.T) { testCallErrors(t, factory) })
	t.Run("CallCtxCancelMidCall", func(t *testing.T) { testCallCtxCancel(t, factory) })
	t.Run("CrashRestart", func(t *testing.T) { testCrashRestart(t, factory) })
	t.Run("Broadcast", func(t *testing.T) { testBroadcast(t, factory) })
	t.Run("OnDefault", func(t *testing.T) { testOnDefault(t, factory) })
	t.Run("RegisterSemantics", func(t *testing.T) { testRegisterSemantics(t, factory) })
	t.Run("Concurrent", func(t *testing.T) { testConcurrent(t, factory) })
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timeout: %s", msg)
}

// register binds addr on ts[idx] and waits until every transport in the
// universe can route to it (multi-process backends learn addresses
// asynchronously).
func register(t *testing.T, ts []transport.Transport, idx int, addr string) transport.Endpoint {
	t.Helper()
	ep, err := ts[idx].Register(addr)
	if err != nil {
		t.Fatalf("register %q: %v", addr, err)
	}
	for _, tr := range ts {
		tr := tr
		waitFor(t, 5*time.Second, func() bool {
			for _, a := range tr.Addresses() {
				if a == addr {
					return true
				}
			}
			return false
		}, fmt.Sprintf("address %q visible on every transport", addr))
	}
	return ep
}

func testSendDelivers(t *testing.T, factory Factory) {
	ts := factory(t, 2)
	a := register(t, ts, 0, "a")
	b := register(t, ts, 1%len(ts), "b")

	type got struct {
		from    string
		payload []byte
	}
	ch := make(chan got, 1)
	b.OnMessage("ping", func(from string, payload []byte) {
		ch <- got{from, append([]byte(nil), payload...)}
	})
	if err := a.Send("b", "ping", []byte("hello")); err != nil {
		t.Fatalf("send: %v", err)
	}
	select {
	case g := <-ch:
		if g.from != "a" || !bytes.Equal(g.payload, []byte("hello")) {
			t.Fatalf("got from=%q payload=%q", g.from, g.payload)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message not delivered")
	}
	st := ts[0].Stats()
	if st.Sent == 0 {
		t.Fatalf("sender stats not counted: %+v", st)
	}
	waitFor(t, 5*time.Second, func() bool { return ts[1%len(ts)].Stats().Delivered > 0 },
		"receiver counted the delivery")
}

func testSendUnknownAddress(t *testing.T, factory Factory) {
	ts := factory(t, 1)
	a := register(t, ts, 0, "a")
	if err := a.Send("nobody", "k", nil); !errors.Is(err, transport.ErrUnknownAddress) {
		t.Fatalf("send to unknown = %v, want ErrUnknownAddress", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if _, err := a.Call(ctx, "nobody", "k", nil); !errors.Is(err, transport.ErrUnknownAddress) {
		t.Fatalf("call to unknown = %v, want ErrUnknownAddress", err)
	}
}

func testCallRoundTrip(t *testing.T, factory Factory) {
	ts := factory(t, 2)
	a := register(t, ts, 0, "a")
	b := register(t, ts, 1%len(ts), "b")
	b.OnCall("echo", func(from string, payload []byte) ([]byte, error) {
		return append([]byte(from+":"), payload...), nil
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	out, err := a.Call(ctx, "b", "echo", []byte("x"))
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	if string(out) != "a:x" {
		t.Fatalf("reply = %q, want %q", out, "a:x")
	}
}

func testCallErrors(t *testing.T, factory Factory) {
	ts := factory(t, 2)
	a := register(t, ts, 0, "a")
	b := register(t, ts, 1%len(ts), "b")
	b.OnCall("fail", func(from string, payload []byte) ([]byte, error) {
		return nil, errors.New("boom: handler exploded")
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := a.Call(ctx, "b", "fail", nil); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("handler error = %v, want boom", err)
	}
	// Calls to a kind with no handler keep their sentinel identity across
	// the wire.
	if _, err := a.Call(ctx, "b", "no-such-kind", nil); !errors.Is(err, transport.ErrNoHandler) {
		t.Fatalf("missing handler = %v, want ErrNoHandler", err)
	}
}

func testCallCtxCancel(t *testing.T, factory Factory) {
	ts := factory(t, 2)
	a := register(t, ts, 0, "a")
	b := register(t, ts, 1%len(ts), "b")
	entered := make(chan struct{})
	release := make(chan struct{})
	b.OnCall("slow", func(from string, payload []byte) ([]byte, error) {
		close(entered)
		<-release
		return []byte("late"), nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := a.Call(ctx, "b", "slow", nil)
		done <- err
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("handler never entered")
	}
	cancel() // cancel mid-call, while the handler is still running
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled call = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled call did not return")
	}
	close(release) // the late reply must not break anything
	time.Sleep(10 * time.Millisecond)
}

func testCrashRestart(t *testing.T, factory Factory) {
	ts := factory(t, 2)
	a := register(t, ts, 0, "a")
	b := register(t, ts, 1%len(ts), "b")
	var delivered atomic.Int64
	b.OnMessage("m", func(string, []byte) { delivered.Add(1) })
	b.OnCall("c", func(string, []byte) ([]byte, error) { return []byte("ok"), nil })

	// A crashed endpoint refuses outbound traffic.
	b.Crash()
	if err := b.Send("a", "m", nil); !errors.Is(err, transport.ErrCrashed) {
		t.Fatalf("crashed send = %v, want ErrCrashed", err)
	}
	ctx0, cancel0 := context.WithTimeout(context.Background(), time.Second)
	if _, err := b.Call(ctx0, "a", "c", nil); !errors.Is(err, transport.ErrCrashed) {
		cancel0()
		t.Fatalf("crashed call = %v, want ErrCrashed", err)
	}
	cancel0()

	// Inbound traffic to a crashed endpoint is dropped: one-way silently,
	// calls by timing out.
	if err := a.Send("b", "m", nil); err != nil {
		t.Fatalf("send to crashed endpoint must be silent, got %v", err)
	}
	ctx1, cancel1 := context.WithTimeout(context.Background(), 250*time.Millisecond)
	if _, err := a.Call(ctx1, "b", "c", nil); !errors.Is(err, context.DeadlineExceeded) {
		cancel1()
		t.Fatalf("call to crashed endpoint = %v, want deadline exceeded", err)
	}
	cancel1()
	if delivered.Load() != 0 {
		t.Fatal("crashed endpoint received traffic")
	}

	// Restart restores both directions.
	b.Restart()
	if err := a.Send("b", "m", nil); err != nil {
		t.Fatalf("send after restart: %v", err)
	}
	waitFor(t, 5*time.Second, func() bool { return delivered.Load() == 1 }, "delivery after restart")
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if out, err := a.Call(ctx2, "b", "c", nil); err != nil || string(out) != "ok" {
		t.Fatalf("call after restart = %q, %v", out, err)
	}
}

func testBroadcast(t *testing.T, factory Factory) {
	ts := factory(t, 3)
	eps := make([]transport.Endpoint, 4)
	counts := make([]atomic.Int64, 4)
	for i := range eps {
		name := fmt.Sprintf("n%d", i)
		eps[i] = register(t, ts, i%len(ts), name)
		i := i
		eps[i].OnMessage("g", func(string, []byte) { counts[i].Add(1) })
	}
	eps[0].Broadcast("g", []byte("x"), "n2") // except n2
	waitFor(t, 5*time.Second, func() bool {
		return counts[1].Load() == 1 && counts[3].Load() == 1
	}, "broadcast reaches all non-excluded endpoints")
	time.Sleep(20 * time.Millisecond)
	if counts[0].Load() != 0 {
		t.Fatal("broadcast came back to the sender")
	}
	if counts[2].Load() != 0 {
		t.Fatal("broadcast reached the excluded endpoint")
	}
}

func testOnDefault(t *testing.T, factory Factory) {
	ts := factory(t, 2)
	a := register(t, ts, 0, "a")
	b := register(t, ts, 1%len(ts), "b")
	got := make(chan transport.Message, 1)
	b.OnMessage("known", func(string, []byte) {})
	b.OnDefault(func(msg transport.Message) { got <- msg })
	if err := a.Send("b", "mystery", []byte("p")); err != nil {
		t.Fatal(err)
	}
	select {
	case msg := <-got:
		if msg.Kind != "mystery" || msg.From != "a" || string(msg.Payload) != "p" {
			t.Fatalf("catch-all got %+v", msg)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("catch-all never invoked")
	}
}

func testRegisterSemantics(t *testing.T, factory Factory) {
	ts := factory(t, 1)
	ep := register(t, ts, 0, "dup")
	if ep.Addr() != "dup" {
		t.Fatalf("Addr() = %q", ep.Addr())
	}
	if _, err := ts[0].Register("dup"); !errors.Is(err, transport.ErrAddressInUse) {
		t.Fatalf("duplicate register = %v, want ErrAddressInUse", err)
	}
	ts[0].Unregister("dup")
	if _, err := ts[0].Register("dup"); err != nil {
		t.Fatalf("register after unregister: %v", err)
	}
}

func testConcurrent(t *testing.T, factory Factory) {
	ts := factory(t, 2)
	const endpoints = 4
	const workers = 4
	const opsPerWorker = 50

	eps := make([]transport.Endpoint, endpoints)
	var received atomic.Int64
	for i := range eps {
		name := fmt.Sprintf("w%d", i)
		eps[i] = register(t, ts, i%len(ts), name)
		eps[i].OnMessage("m", func(string, []byte) { received.Add(1) })
		eps[i].OnCall("sum", func(from string, payload []byte) ([]byte, error) {
			var s byte
			for _, b := range payload {
				s += b
			}
			return []byte{s}, nil
		})
	}

	var wg sync.WaitGroup
	errCh := make(chan error, endpoints*workers)
	var sent atomic.Int64
	for e := 0; e < endpoints; e++ {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(e, w int) {
				defer wg.Done()
				src := eps[e]
				for i := 0; i < opsPerWorker; i++ {
					dst := fmt.Sprintf("w%d", (e+1+i%(endpoints-1))%endpoints)
					if i%2 == 0 {
						if err := src.Send(dst, "m", []byte{byte(i)}); err != nil {
							errCh <- fmt.Errorf("send: %w", err)
							return
						}
						sent.Add(1)
					} else {
						ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
						out, err := src.Call(ctx, dst, "sum", []byte{1, 2, byte(i)})
						cancel()
						if err != nil {
							errCh <- fmt.Errorf("call: %w", err)
							return
						}
						if want := byte(3 + byte(i)); out[0] != want {
							errCh <- fmt.Errorf("call result %d, want %d", out[0], want)
							return
						}
					}
				}
			}(e, w)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, func() bool { return received.Load() == sent.Load() },
		fmt.Sprintf("all %d one-way messages delivered", sent.Load()))
}
