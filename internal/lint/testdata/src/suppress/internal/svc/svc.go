// Package svc exercises //lint:ignore suppression mechanics.
package svc

import "context"

// Detach deliberately severs the context for a background task that must
// outlive the request; the standalone directive on the line above covers it.
func Detach(ctx context.Context) context.Context {
	//lint:ignore ctxflow the janitor goroutine must outlive the request
	return context.Background()
}

// DetachTrailing uses the same-line directive form.
func DetachTrailing(ctx context.Context) context.Context {
	return context.TODO() //lint:ignore ctxflow placeholder wiring replaced at startup
}

// Leak is the control: an unsuppressed violation still fires.
func Leak(ctx context.Context) context.Context {
	return context.Background() // want "inside a function that receives a context.Context"
}

// stale demonstrates that a directive covering nothing is itself a finding.
func stale(n int) int {
	/* want "unused" */ //lint:ignore ctxflow nothing here violates anything
	return n + 1
}

/* want "malformed" */ //lint:ignore ctxflow
