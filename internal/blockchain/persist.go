package blockchain

import (
	"encoding/binary"
	"errors"
	"fmt"

	"drams/internal/store"
)

// Persistence lets a node survive restarts: the best chain is written to a
// WAL-backed KV store and replayed (with full validation) on reload. Side
// branches are not persisted — after a restart the node re-learns any
// competing branch from its peers, which is safe because fork choice is
// deterministic.

const (
	persistBlockPrefix = "block/"
	persistHeadKey     = "head"
)

func persistBlockKey(height uint64) string {
	return fmt.Sprintf("%s%016x", persistBlockPrefix, height)
}

// SaveToStore writes the best chain (excluding genesis, which is derived
// from Config) to kv, replacing any previous snapshot.
func (c *Chain) SaveToStore(kv *store.KV) error {
	hashes := c.BestChainHashes()
	puts := make(map[string][]byte, len(hashes))
	for _, h := range hashes {
		b, ok := c.BlockByHash(h)
		if !ok {
			return fmt.Errorf("blockchain: save: missing block %s", h.Short())
		}
		if b.Header.Height == 0 {
			continue
		}
		puts[persistBlockKey(b.Header.Height)] = b.Encode()
	}
	var head [8]byte
	binary.BigEndian.PutUint64(head[:], uint64(len(hashes)-1))
	puts[persistHeadKey] = head[:]
	// Remove stale blocks above the new head (shorter chain after resave).
	for _, key := range kv.Keys(persistBlockPrefix) {
		if _, ok := puts[key]; !ok {
			if err := kv.Delete(key); err != nil {
				return err
			}
		}
	}
	return kv.Batch(puts)
}

// LoadFromStore replays a snapshot into the chain with full validation and
// returns how many blocks were applied. The chain should be freshly
// constructed with the same Config that produced the snapshot; a snapshot
// from a different genesis fails validation on its first block.
func (c *Chain) LoadFromStore(kv *store.KV) (int, error) {
	raw, err := kv.Get(persistHeadKey)
	if errors.Is(err, store.ErrNotFound) {
		return 0, nil // empty store: nothing to load
	}
	if err != nil {
		return 0, err
	}
	if len(raw) != 8 {
		return 0, fmt.Errorf("blockchain: load: corrupt head record")
	}
	head := binary.BigEndian.Uint64(raw)
	applied := 0
	for h := uint64(1); h <= head; h++ {
		data, err := kv.Get(persistBlockKey(h))
		if err != nil {
			return applied, fmt.Errorf("blockchain: load: missing block at height %d: %w", h, err)
		}
		b, err := DecodeBlock(data)
		if err != nil {
			return applied, fmt.Errorf("blockchain: load height %d: %w", h, err)
		}
		if err := c.AddBlock(b); err != nil && !errors.Is(err, ErrKnownBlock) {
			return applied, fmt.Errorf("blockchain: load height %d: %w", h, err)
		}
		applied++
	}
	return applied, nil
}
