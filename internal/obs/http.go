package obs

import (
	"net/http"
	"strings"
)

// Handler serves the operations endpoints:
//
//	GET /metrics — Prometheus text exposition of Gather()
//	GET /healthz — liveness: always 200 while the process serves
//	GET /readyz  — readiness: 200 when every Health check passes,
//	               503 with one "name: reason" line per failing check
//
// /metrics is snapshot-then-serve: Gather materialises every sample
// before the first byte is written, so a slow or stalled scraper holds
// only its own connection — never a registry, component or histogram
// lock — and costs the decide hot path nothing.
func Handler(g *Gatherer, h *Health) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		samples := g.Gather() // snapshot completes before any write
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WriteExposition(w, samples)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		ready, failures := h.Ready()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !ready {
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = w.Write([]byte(strings.Join(failures, "\n") + "\n"))
			return
		}
		_, _ = w.Write([]byte("ok\n"))
	})
	return mux
}
