// Package metrics implements the lightweight instrumentation used by the
// DRAMS experiment harness: counters, gauges and latency histograms with
// percentile summaries. All types are safe for concurrent use and the zero
// values of Counter and Gauge are ready to use.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter. The zero value is ready to
// use.
type Counter struct{ n atomic.Int64 }

// Inc adds one to the counter.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta (which must be >= 0) to the counter.
func (c *Counter) Add(delta int64) {
	if delta < 0 {
		return
	}
	c.n.Add(delta)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Gauge is a value that can go up and down. The zero value is ready to use.
type Gauge struct{ n atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.n.Store(v) }

// Add adds delta (may be negative).
func (g *Gauge) Add(delta int64) { g.n.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.n.Load() }

// Histogram records observations and reports percentile summaries. It keeps
// HDR-style log-bucketed counts — each power of two is split into 2^subBits
// linear sub-buckets — so quantiles carry a bounded relative error
// (<= 2^-subBits ≈ 0.1%) no matter how many samples are observed or how
// skewed they are. Memory is proportional to the number of distinct buckets
// touched (the span of the data), never to the sample count.
type Histogram struct {
	mu         sync.Mutex
	buckets    map[int32]int64
	count      int64
	sum, sumSq float64
	min, max   float64
}

// subBits fixes the per-octave resolution: 1024 linear sub-buckets per
// power of two bound the relative quantile error at 1/1024.
const subBits = 10

// NewHistogram returns an empty Histogram. The parameter is retained for
// API compatibility with the old reservoir-sampling implementation and is
// ignored: log-bucketed counts are exact in count and bounded in memory
// without a sample cap.
func NewHistogram(int) *Histogram {
	return &Histogram{
		buckets: make(map[int32]int64),
		min:     math.Inf(1),
		max:     math.Inf(-1),
	}
}

// bucketKey maps a value to its log-bucket. Zero (and non-finite values,
// which are clamped) get the reserved key 0; negative values mirror the
// positive layout with a negative key.
func bucketKey(v float64) int32 {
	if v == 0 || math.IsNaN(v) {
		return 0
	}
	neg := v < 0
	if neg {
		v = -v
	}
	frac, exp := math.Frexp(v) // v = frac × 2^exp, frac ∈ [0.5, 1)
	if math.IsInf(v, 0) {
		frac, exp = 0.5, 1025
	}
	sub := int32((frac*2 - 1) * (1 << subBits)) // ∈ [0, 2^subBits)
	if sub >= 1<<subBits {
		sub = 1<<subBits - 1
	}
	key := (int32(exp+1100) << subBits) | sub
	if neg {
		return -key
	}
	return key
}

// bucketBounds returns the [lo, hi) value range represented by a key.
func bucketBounds(key int32) (lo, hi float64) {
	if key == 0 {
		return 0, 0
	}
	neg := key < 0
	if neg {
		key = -key
	}
	exp := int(key>>subBits) - 1100
	sub := float64(key & (1<<subBits - 1))
	lo = math.Ldexp(1+sub/(1<<subBits), exp-1)
	hi = math.Ldexp(1+(sub+1)/(1<<subBits), exp-1)
	if neg {
		return -hi, -lo
	}
	return lo, hi
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += v
	h.sumSq += v * v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.buckets[bucketKey(v)]++
}

// ObserveDuration records a duration sample in milliseconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(float64(d) / float64(time.Millisecond))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the arithmetic mean of all observations (0 if none).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest observation (0 if none).
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation (0 if none).
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.max
}

// bucketRow is one populated bucket, ordered by represented value.
type bucketRow struct {
	lo, hi float64
	count  int64
}

// sortedBuckets snapshots the populated buckets in ascending value order.
// Callers must hold h.mu.
func (h *Histogram) sortedBuckets() []bucketRow {
	rows := make([]bucketRow, 0, len(h.buckets))
	for key, c := range h.buckets {
		lo, hi := bucketBounds(key)
		rows = append(rows, bucketRow{lo: lo, hi: hi, count: c})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].lo < rows[j].lo })
	return rows
}

// quantileFrom walks the cumulative bucket counts to the q-quantile rank
// and interpolates linearly inside the landing bucket. Results are clamped
// to the exact observed [min, max].
func quantileFrom(rows []bucketRow, count int64, mn, mx float64, q float64) float64 {
	if count == 0 {
		return 0
	}
	if q <= 0 {
		return mn
	}
	if q >= 1 {
		return mx
	}
	rank := q * float64(count-1)
	cum := int64(0)
	for _, r := range rows {
		if rank < float64(cum+r.count) {
			within := (rank - float64(cum) + 0.5) / float64(r.count)
			v := r.lo + (r.hi-r.lo)*within
			return math.Max(mn, math.Min(mx, v))
		}
		cum += r.count
	}
	return mx
}

// Quantile returns the q-quantile (0 <= q <= 1) with relative error bounded
// by the bucket resolution (~0.1%). Returns 0 when empty; q=0 and q=1
// return the exact min and max.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return quantileFrom(h.sortedBuckets(), h.count, h.min, h.max, q)
}

// Buckets returns the number of populated log-buckets — the memory bound of
// the histogram, proportional to the data's span, not its volume.
func (h *Histogram) Buckets() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.buckets)
}

// Summary is a point-in-time percentile snapshot of a Histogram.
type Summary struct {
	Count               int64
	Mean                float64
	Min, Max            float64
	P50, P90, P99, P999 float64
	StdDev              float64
	TotalObservation    float64
}

// Snapshot computes a Summary.
func (h *Histogram) Snapshot() Summary {
	h.mu.Lock()
	count := h.count
	sum, sumSq := h.sum, h.sumSq
	rows := h.sortedBuckets()
	mn, mx := h.min, h.max
	h.mu.Unlock()

	s := Summary{Count: count, TotalObservation: sum}
	if count == 0 {
		return s
	}
	s.Mean = sum / float64(count)
	s.Min, s.Max = mn, mx
	q := func(p float64) float64 { return quantileFrom(rows, count, mn, mx, p) }
	s.P50, s.P90, s.P99, s.P999 = q(0.50), q(0.90), q(0.99), q(0.999)
	if count > 1 {
		// Sample variance from the exact running moments.
		variance := (sumSq - float64(count)*s.Mean*s.Mean) / float64(count-1)
		if variance > 0 {
			s.StdDev = math.Sqrt(variance)
		}
	}
	return s
}

// String renders the summary as a compact single line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f p50=%.3f p90=%.3f p99=%.3f min=%.3f max=%.3f",
		s.Count, s.Mean, s.P50, s.P90, s.P99, s.Min, s.Max)
}

// Registry groups named metrics for an experiment run.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty Registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(0)
		r.histograms[name] = h
	}
	return h
}

// Dump renders all metrics sorted by name, one per line.
func (r *Registry) Dump() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var lines []string
	for name, c := range r.counters {
		lines = append(lines, fmt.Sprintf("counter %s = %d", name, c.Value()))
	}
	for name, g := range r.gauges {
		lines = append(lines, fmt.Sprintf("gauge %s = %d", name, g.Value()))
	}
	for name, h := range r.histograms {
		lines = append(lines, fmt.Sprintf("hist %s: %s", name, h.Snapshot()))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
