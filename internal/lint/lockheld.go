package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// LockHeld enforces the PR 9 snapshot-then-serve contract: no sync lock is
// held across an operation whose latency the holder does not control — a
// transport Call/Send/Broadcast, a channel send, or a Write to an
// interface writer (the stalled-/metrics-scraper class: one wedged TCP
// client must never wedge a component mutex). The check is syntactic and
// block-scoped: between x.Lock()/x.RLock() and the matching unlock in the
// same statement list (a deferred unlock holds to function exit), those
// operations are flagged. Function literals are scanned as independent
// functions since they run on their own schedule.
type LockHeld struct {
	// TransportPkg is the module-relative package whose Call/Send/Broadcast
	// methods (and implementors of its Endpoint interface) block on the
	// network.
	TransportPkg string
}

// NewLockHeld returns the analyzer bound to internal/transport.
func NewLockHeld() *LockHeld { return &LockHeld{TransportPkg: "internal/transport"} }

func (a *LockHeld) Name() string { return "lockheld" }

func (a *LockHeld) Doc() string {
	return "no lock held across a transport Call/Send/Broadcast, channel send, or interface Write (PR 9)"
}

var transportBlockingMethods = map[string]bool{"Call": true, "Send": true, "Broadcast": true}

func (a *LockHeld) Run(p *Pass) {
	var endpoint *types.Interface
	if obj := p.LookupObject(a.TransportPkg, "Endpoint"); obj != nil {
		if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
			endpoint = iface
		}
	}
	s := &lockScan{pass: p, transportPath: p.Graph.Module + "/" + a.TransportPkg, endpoint: endpoint}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					s.scanStmts(fn.Body.List, nil)
				}
			case *ast.FuncLit:
				if fn.Body != nil {
					s.scanStmts(fn.Body.List, nil)
				}
			}
			return true
		})
	}
}

type lockScan struct {
	pass          *Pass
	transportPath string
	endpoint      *types.Interface
}

// scanStmts walks one statement list tracking which lock receivers are
// held, recursing into nested blocks (each inherits the current held set)
// and checking every other statement for blocking operations.
func (s *lockScan) scanStmts(stmts []ast.Stmt, inherited map[string]bool) {
	held := map[string]bool{}
	for k := range inherited {
		held[k] = true
	}
	for _, st := range stmts {
		if recv, isLock, ok := s.lockOp(st); ok {
			if isLock {
				held[recv] = true
			} else {
				delete(held, recv)
			}
			continue
		}
		if s.isDeferredUnlock(st) {
			continue // the lock stays held to function exit by design
		}
		if len(held) > 0 {
			s.checkStmt(st, held)
		}
		s.recurse(st, held)
	}
}

// lockOp matches `x.Lock()` / `x.RLock()` (isLock=true) and `x.Unlock()` /
// `x.RUnlock()` (isLock=false) expression statements where the method is
// declared in package sync.
func (s *lockScan) lockOp(st ast.Stmt) (recv string, isLock, ok bool) {
	es, isExpr := st.(*ast.ExprStmt)
	if !isExpr {
		return "", false, false
	}
	return s.lockCall(es.X)
}

func (s *lockScan) lockCall(e ast.Expr) (recv string, isLock, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	f, _ := s.pass.Info.Uses[sel.Sel].(*types.Func)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return "", false, false
	}
	switch f.Name() {
	case "Lock", "RLock":
		return types.ExprString(sel.X), true, true
	case "Unlock", "RUnlock":
		return types.ExprString(sel.X), false, true
	}
	return "", false, false
}

func (s *lockScan) isDeferredUnlock(st ast.Stmt) bool {
	d, ok := st.(*ast.DeferStmt)
	if !ok {
		return false
	}
	_, isLock, matched := s.lockCall(d.Call)
	return matched && !isLock
}

// recurse descends into the nested statement lists of compound statements
// so locks taken inside them are tracked block-locally.
func (s *lockScan) recurse(st ast.Stmt, held map[string]bool) {
	switch n := st.(type) {
	case *ast.BlockStmt:
		s.scanStmts(n.List, held)
	case *ast.IfStmt:
		s.scanStmts(n.Body.List, held)
		if n.Else != nil {
			s.recurse(n.Else, held)
		}
	case *ast.ForStmt:
		s.scanStmts(n.Body.List, held)
	case *ast.RangeStmt:
		s.scanStmts(n.Body.List, held)
	case *ast.SwitchStmt:
		for _, c := range n.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.scanStmts(cc.Body, held)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range n.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				s.scanStmts(cc.Body, held)
			}
		}
	case *ast.SelectStmt:
		// A select with a default clause never blocks on its comm cases,
		// so its sends are safe under a lock (the drop-not-block fanout
		// idiom); the clause bodies still run with the lock held.
		nonBlocking := false
		for _, c := range n.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				nonBlocking = true
			}
		}
		for _, c := range n.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				var body []ast.Stmt
				if cc.Comm != nil && !nonBlocking {
					body = append(body, cc.Comm)
				}
				s.scanStmts(append(body, cc.Body...), held)
			}
		}
	case *ast.LabeledStmt:
		s.recurse(n.Stmt, held)
	}
}

// checkStmt flags blocking operations in the directly attached expressions
// of st: nested blocks are covered by recurse, and function literals,
// go, and defer statements run on their own schedule.
func (s *lockScan) checkStmt(st ast.Stmt, held map[string]bool) {
	ast.Inspect(st, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.BlockStmt, *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
			return false
		case *ast.SendStmt:
			s.pass.Reportf(x.Arrow, "channel send while %s is held: a slow receiver stalls every path contending for the lock", heldNames(held))
		case *ast.CallExpr:
			s.checkCall(x, held)
		}
		return true
	})
}

func (s *lockScan) checkCall(call *ast.CallExpr, held map[string]bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection := s.pass.Info.Selections[sel]
	if selection == nil {
		return
	}
	f, ok := selection.Obj().(*types.Func)
	if !ok {
		return
	}
	name := f.Name()
	if transportBlockingMethods[name] {
		declaredInTransport := f.Pkg() != nil && f.Pkg().Path() == s.transportPath
		implementsEndpoint := s.endpoint != nil &&
			(types.Implements(selection.Recv(), s.endpoint) ||
				types.Implements(types.NewPointer(selection.Recv()), s.endpoint))
		if declaredInTransport || implementsEndpoint {
			s.pass.Reportf(call.Pos(), "transport %s while %s is held: a slow peer turns a network stall into a lock stall (snapshot state, release, then call)", name, heldNames(held))
			return
		}
	}
	if name == "Write" && types.IsInterface(selection.Recv()) {
		if sig, ok := f.Type().(*types.Signature); ok && sig.Params().Len() == 1 {
			if slice, ok := sig.Params().At(0).Type().(*types.Slice); ok {
				if basic, ok := slice.Elem().(*types.Basic); ok && basic.Kind() == types.Byte {
					s.pass.Reportf(call.Pos(), "io.Writer Write while %s is held: a wedged scraper or client must not hold a component lock (snapshot, unlock, then serve)", heldNames(held))
				}
			}
		}
	}
}

func heldNames(held map[string]bool) string {
	names := make([]string, 0, len(held))
	for n := range held {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
