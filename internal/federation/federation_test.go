package federation

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"drams/internal/netsim"
	"drams/internal/xacml"
)

func TestSimpleTopologyShape(t *testing.T) {
	top := SimpleTopology("f", 3)
	if err := top.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(top.Clouds) != 3 {
		t.Fatalf("clouds = %d", len(top.Clouds))
	}
	infra, err := top.InfrastructureTenant()
	if err != nil || infra.Name != "infrastructure" || infra.Cloud != "cloud-1" {
		t.Fatalf("infra = %+v, %v", infra, err)
	}
	edges := top.EdgeTenants()
	if len(edges) != 3 {
		t.Fatalf("edges = %v", edges)
	}
	onCloud1 := top.TenantsOnCloud("cloud-1")
	if len(onCloud1) != 2 { // tenant-1 + infrastructure
		t.Fatalf("cloud-1 tenants = %v", onCloud1)
	}
}

func TestTopologyValidation(t *testing.T) {
	cases := []struct {
		name string
		top  Topology
		want error
	}{
		{"no infra", Topology{
			Clouds:  []Cloud{{Name: "c"}},
			Tenants: []Tenant{{Name: "t", Cloud: "c"}},
		}, ErrNoInfrastructure},
		{"two infra", Topology{
			Clouds: []Cloud{{Name: "c"}},
			Tenants: []Tenant{
				{Name: "t", Cloud: "c"},
				{Name: "i1", Cloud: "c", Infrastructure: true},
				{Name: "i2", Cloud: "c", Infrastructure: true},
			},
		}, ErrNoInfrastructure},
		{"unknown cloud", Topology{
			Clouds:  []Cloud{{Name: "c"}},
			Tenants: []Tenant{{Name: "t", Cloud: "ghost"}, {Name: "i", Cloud: "c", Infrastructure: true}},
		}, ErrUnknownCloud},
		{"dup tenant", Topology{
			Clouds: []Cloud{{Name: "c"}},
			Tenants: []Tenant{
				{Name: "t", Cloud: "c"}, {Name: "t", Cloud: "c"},
				{Name: "i", Cloud: "c", Infrastructure: true},
			},
		}, ErrDuplicateName},
		{"dup cloud", Topology{
			Clouds: []Cloud{{Name: "c"}, {Name: "c"}},
		}, ErrDuplicateName},
		{"no edges", Topology{
			Clouds:  []Cloud{{Name: "c"}},
			Tenants: []Tenant{{Name: "i", Cloud: "c", Infrastructure: true}},
		}, ErrNoEdgeTenants},
	}
	for _, c := range cases {
		if err := c.top.Validate(); !errors.Is(err, c.want) {
			t.Errorf("%s: got %v, want %v", c.name, err, c.want)
		}
	}
}

// probeRecorder records hook invocations.
type probeRecorder struct {
	mu          sync.Mutex
	pepSent     []*xacml.Request
	pepReceived []xacml.Decision
	pepEnforced []xacml.Decision
	pdpReceived []*xacml.Request
	pdpSent     []xacml.Decision
}

func (p *probeRecorder) PEPRequestSent(req *xacml.Request) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pepSent = append(p.pepSent, req)
}
func (p *probeRecorder) PEPResponseReceived(req *xacml.Request, res xacml.Result, enforced xacml.Decision) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pepReceived = append(p.pepReceived, res.Decision)
	p.pepEnforced = append(p.pepEnforced, enforced)
}
func (p *probeRecorder) PDPRequestReceived(req *xacml.Request) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pdpReceived = append(p.pdpReceived, req)
}
func (p *probeRecorder) PDPResponseSent(req *xacml.Request, res xacml.Result) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.pdpSent = append(p.pdpSent, res.Decision)
}

func acPolicy() *xacml.PolicySet {
	permit := &xacml.Rule{ID: "permit-doctor", Effect: xacml.EffectPermit,
		Target: xacml.TargetMatching(xacml.CatSubject, "role", xacml.String("doctor"))}
	deny := &xacml.Rule{ID: "deny", Effect: xacml.EffectDeny}
	return &xacml.PolicySet{ID: "root", Version: "v1", Alg: xacml.DenyUnlessPermit,
		Items: []xacml.PolicyItem{{Policy: &xacml.Policy{ID: "p", Version: "1",
			Alg: xacml.FirstApplicable, Rules: []*xacml.Rule{permit, deny}}}}}
}

type acEnv struct {
	net *netsim.Network
	pdp *PDPService
	pep *PEPService
}

func newACEnv(t *testing.T) (*acEnv, *probeRecorder) {
	t.Helper()
	net := netsim.New(netsim.Config{Seed: 4})
	t.Cleanup(func() { net.Close() })
	pdpSvc, err := NewPDPService(net, xacml.NewPDP(acPolicy()))
	if err != nil {
		t.Fatal(err)
	}
	pep, err := NewPEPService(net, "tenant-1", time.Second)
	if err != nil {
		t.Fatal(err)
	}
	rec := &probeRecorder{}
	pdpSvc.SetProbe(rec)
	pep.SetProbe(rec)
	return &acEnv{net: net, pdp: pdpSvc, pep: pep}, rec
}

func docReq(id, role string) *xacml.Request {
	return xacml.NewRequest(id).Add(xacml.CatSubject, "role", xacml.String(role))
}

func TestPEPPDPFlow(t *testing.T) {
	env, rec := newACEnv(t)
	enf, err := env.pep.Decide(context.Background(), docReq("r1", "doctor"))
	if err != nil {
		t.Fatal(err)
	}
	if !enf.Permitted() {
		t.Fatalf("decision = %s", enf.Decision)
	}
	enf2, err := env.pep.Decide(context.Background(), docReq("r2", "intern"))
	if err != nil {
		t.Fatal(err)
	}
	if enf2.Permitted() {
		t.Fatal("intern permitted")
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.pepSent) != 2 || len(rec.pdpReceived) != 2 || len(rec.pdpSent) != 2 || len(rec.pepEnforced) != 2 {
		t.Fatalf("probe counts: %d %d %d %d", len(rec.pepSent), len(rec.pdpReceived), len(rec.pdpSent), len(rec.pepEnforced))
	}
	if rec.pepEnforced[0] != xacml.Permit || rec.pepEnforced[1] != xacml.Deny {
		t.Fatalf("enforced = %v", rec.pepEnforced)
	}
	if env.pdp.Evaluations() != 2 {
		t.Fatalf("pdp evaluations = %d", env.pdp.Evaluations())
	}
	st := env.pep.Stats()
	if st.Requests != 2 || st.Permits != 1 || st.Denies != 1 {
		t.Fatalf("pep stats = %+v", st)
	}
}

func TestTamperHooksObservableOrder(t *testing.T) {
	env, rec := newACEnv(t)
	env.pep.SetTamper(&Tamper{
		Request: func(req *xacml.Request) *xacml.Request {
			out := xacml.NewRequest(req.ID)
			out.Add(xacml.CatSubject, "role", xacml.String("doctor"))
			return out
		},
	})
	enf, err := env.pep.Decide(context.Background(), docReq("r1", "intern"))
	if err != nil {
		t.Fatal(err)
	}
	if !enf.Permitted() {
		t.Fatal("escalated request should be permitted")
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	// The PEP-side probe saw the original; the PDP-side probe the forged.
	if !rec.pepSent[0].Get(xacml.CatSubject, "role").Contains(xacml.String("intern")) {
		t.Fatal("pep probe saw the tampered request")
	}
	if !rec.pdpReceived[0].Get(xacml.CatSubject, "role").Contains(xacml.String("doctor")) {
		t.Fatal("pdp probe did not see the tampered request")
	}
}

func TestTamperEnforceAndResponse(t *testing.T) {
	env, rec := newACEnv(t)
	env.pep.SetTamper(&Tamper{
		Enforce: func(xacml.Decision) xacml.Decision { return xacml.Permit },
	})
	enf, err := env.pep.Decide(context.Background(), docReq("r1", "intern"))
	if err != nil || !enf.Permitted() {
		t.Fatalf("override failed: %v %v", enf, err)
	}
	rec.mu.Lock()
	if rec.pepReceived[0] != xacml.Deny || rec.pepEnforced[0] != xacml.Permit {
		t.Fatalf("probe saw received=%s enforced=%s", rec.pepReceived[0], rec.pepEnforced[0])
	}
	rec.mu.Unlock()

	env.pep.SetTamper(&Tamper{
		Response: func(res xacml.Result) xacml.Result {
			res.Decision = xacml.Permit
			return res
		},
	})
	enf, err = env.pep.Decide(context.Background(), docReq("r2", "intern"))
	if err != nil || !enf.Permitted() {
		t.Fatalf("response tamper failed: %v %v", enf, err)
	}
	// Clearing restores honesty.
	env.pep.SetTamper(nil)
	enf, err = env.pep.Decide(context.Background(), docReq("r3", "intern"))
	if err != nil || enf.Permitted() {
		t.Fatalf("tamper not cleared: %v %v", enf, err)
	}
}

func TestTamperDrops(t *testing.T) {
	env, rec := newACEnv(t)
	env.pep.SetTamper(&Tamper{DropRequest: true})
	if _, err := env.pep.Decide(context.Background(), docReq("r1", "doctor")); !errors.Is(err, ErrRequestDropped) {
		t.Fatalf("got %v", err)
	}
	rec.mu.Lock()
	if len(rec.pepSent) != 1 || len(rec.pdpReceived) != 0 {
		t.Fatalf("drop-request probes: sent=%d pdp=%d", len(rec.pepSent), len(rec.pdpReceived))
	}
	rec.mu.Unlock()

	env.pep.SetTamper(&Tamper{DropResponse: true})
	if _, err := env.pep.Decide(context.Background(), docReq("r2", "doctor")); !errors.Is(err, ErrRequestDropped) {
		t.Fatalf("got %v", err)
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.pdpSent) != 1 || len(rec.pepEnforced) != 0 {
		t.Fatalf("drop-response probes: pdpSent=%d enforced=%d", len(rec.pdpSent), len(rec.pepEnforced))
	}
}

func TestPEPTimeoutOnPartition(t *testing.T) {
	env, _ := newACEnv(t)
	env.net.Partition([]string{PEPAddr("tenant-1")}, []string{PDPAddr})
	_, err := env.pep.Decide(context.Background(), docReq("r1", "doctor"))
	if err == nil {
		t.Fatal("partitioned PEP succeeded")
	}
	if st := env.pep.Stats(); st.Failures != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPDPServiceEvaluatorSwap(t *testing.T) {
	env, _ := newACEnv(t)
	// Swap in a PDP with a permit-everything policy.
	open := &xacml.PolicySet{ID: "open", Version: "e", Alg: xacml.PermitUnlessDeny,
		Items: []xacml.PolicyItem{{Policy: &xacml.Policy{ID: "p", Version: "1",
			Alg: xacml.FirstApplicable, Rules: []*xacml.Rule{{ID: "p", Effect: xacml.EffectPermit}}}}}}
	env.pdp.SetEvaluator(xacml.NewPDP(open))
	enf, err := env.pep.Decide(context.Background(), docReq("r1", "intern"))
	if err != nil || !enf.Permitted() {
		t.Fatalf("swap ineffective: %v %v", enf, err)
	}
}

func TestDuplicatePEPRegistration(t *testing.T) {
	net := netsim.New(netsim.Config{Seed: 1})
	defer net.Close()
	if _, err := NewPEPService(net, "t", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := NewPEPService(net, "t", 0); err == nil {
		t.Fatal("duplicate PEP accepted")
	}
}

func TestEnforcementPermitted(t *testing.T) {
	for d, want := range map[xacml.Decision]bool{
		xacml.Permit: true, xacml.Deny: false, xacml.NotApplicable: false, xacml.IndeterminateDP: false,
	} {
		if (Enforcement{Decision: d}).Permitted() != want {
			t.Errorf("Permitted(%s) != %v", d, want)
		}
	}
}
