package idgen

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestGeneratorUnique(t *testing.T) {
	g := New()
	seen := make(map[ID]bool)
	for i := 0; i < 10000; i++ {
		id := g.Next()
		if seen[id] {
			t.Fatalf("duplicate ID %s at iteration %d", id, i)
		}
		seen[id] = true
	}
}

func TestGeneratorDeterministicWithSeed(t *testing.T) {
	a, b := NewSeeded(42), NewSeeded(42)
	for i := 0; i < 100; i++ {
		if ida, idb := a.Next(), b.Next(); ida != idb {
			t.Fatalf("seeded generators diverged at %d: %s vs %s", i, ida, idb)
		}
	}
}

func TestGeneratorSortedByGenerationOrder(t *testing.T) {
	g := NewSeeded(7)
	prev := g.Next()
	for i := 0; i < 1000; i++ {
		cur := g.Next()
		if cur.String() <= prev.String() {
			t.Fatalf("IDs not monotonically increasing: %s then %s", prev, cur)
		}
		prev = cur
	}
}

func TestParseRoundTrip(t *testing.T) {
	g := NewSeeded(1)
	for i := 0; i < 50; i++ {
		id := g.Next()
		parsed, err := Parse(id.String())
		if err != nil {
			t.Fatalf("Parse(%s): %v", id, err)
		}
		if parsed != id {
			t.Fatalf("round trip %s -> %s", id, parsed)
		}
	}
}

func TestParseRejectsBadInput(t *testing.T) {
	cases := []string{"", "abc", "zz" + string(make([]byte, 30)), "0123456789abcdef0123456789abcde"}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", c)
		}
	}
}

func TestIDZeroAndShort(t *testing.T) {
	var z ID
	if !z.IsZero() {
		t.Fatal("zero ID not IsZero")
	}
	g := NewSeeded(3)
	id := g.Next()
	if id.IsZero() {
		t.Fatal("generated ID is zero")
	}
	if len(id.Short()) != 8 {
		t.Fatalf("Short length = %d, want 8", len(id.Short()))
	}
}

func TestGeneratorConcurrentUnique(t *testing.T) {
	g := New()
	const workers, per = 8, 2000
	var mu sync.Mutex
	seen := make(map[ID]bool, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]ID, 0, per)
			for i := 0; i < per; i++ {
				local = append(local, g.Next())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, id := range local {
				if seen[id] {
					t.Errorf("duplicate concurrent ID %s", id)
					return
				}
				seen[id] = true
			}
		}()
	}
	wg.Wait()
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(99), NewRand(99)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("seeded Rand diverged at %d", i)
		}
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRandIntnDistribution(t *testing.T) {
	r := NewRand(11)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	for v, c := range counts {
		// Each bucket expects trials/n = 10000; allow ±15%.
		if c < 8500 || c > 11500 {
			t.Errorf("Intn bucket %d count %d deviates from uniform", v, c)
		}
	}
}

func TestRandIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestRandPerm(t *testing.T) {
	r := NewRand(123)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm invalid: %v", p)
		}
		seen[v] = true
	}
}

func TestRandBytesLen(t *testing.T) {
	r := NewRand(77)
	if err := quick.Check(func(n uint16) bool {
		b := r.Bytes(int(n % 4096))
		return len(b) == int(n%4096)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSequence(t *testing.T) {
	var s Sequence
	if s.Next() != 1 || s.Next() != 2 {
		t.Fatal("Sequence did not start at 1 and increment")
	}
}
