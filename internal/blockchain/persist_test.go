package blockchain

import (
	"fmt"
	"path/filepath"
	"testing"

	"drams/internal/store"
)

func buildTestChain(t *testing.T, blocks int) *Chain {
	t.Helper()
	alice := testIdentity(t, "alice", 1)
	c := NewChain(testChainConfig(t, alice))
	parent := c.Genesis()
	for i := 1; i <= blocks; i++ {
		tx, err := NewTransaction(alice, uint64(i), putCall(fmt.Sprintf("k%d", i), "v"))
		if err != nil {
			t.Fatal(err)
		}
		b := mineChild(t, c, parent, tx)
		if err := c.AddBlock(b); err != nil {
			t.Fatal(err)
		}
		parent = b.Hash()
	}
	return c
}

func TestSaveLoadRoundTrip(t *testing.T) {
	src := buildTestChain(t, 5)
	kv := store.NewMemory()
	if err := src.SaveToStore(kv); err != nil {
		t.Fatal(err)
	}
	alice := testIdentity(t, "alice", 1)
	dst := NewChain(testChainConfig(t, alice))
	n, err := dst.LoadFromStore(kv)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("applied %d blocks, want 5", n)
	}
	if dst.Height() != 5 {
		t.Fatalf("height = %d", dst.Height())
	}
	if dst.StateDigest() != src.StateDigest() {
		t.Fatal("restored state differs")
	}
	if dst.AccountNonce("alice") != 5 {
		t.Fatalf("nonce = %d", dst.AccountNonce("alice"))
	}
}

func TestLoadEmptyStore(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	c := NewChain(testChainConfig(t, alice))
	n, err := c.LoadFromStore(store.NewMemory())
	if err != nil || n != 0 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestSaveTruncatesStaleBlocks(t *testing.T) {
	long := buildTestChain(t, 6)
	kv := store.NewMemory()
	if err := long.SaveToStore(kv); err != nil {
		t.Fatal(err)
	}
	short := buildTestChain(t, 3)
	if err := short.SaveToStore(kv); err != nil {
		t.Fatal(err)
	}
	// Stale heights 4-6 must be gone so a load stops at 3.
	alice := testIdentity(t, "alice", 1)
	dst := NewChain(testChainConfig(t, alice))
	n, err := dst.LoadFromStore(kv)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || dst.Height() != 3 {
		t.Fatalf("n=%d height=%d", n, dst.Height())
	}
	if len(kv.Keys(persistBlockPrefix)) != 3 {
		t.Fatalf("stale blocks kept: %v", kv.Keys(persistBlockPrefix))
	}
}

func TestLoadRejectsTamperedSnapshot(t *testing.T) {
	src := buildTestChain(t, 4)
	kv := store.NewMemory()
	if err := src.SaveToStore(kv); err != nil {
		t.Fatal(err)
	}
	// Attacker flips a byte of a stored block: validation must fail.
	key := persistBlockKey(2)
	raw, err := kv.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the payload tail (lands in the last signature or the
	// structural framing, depending on format).
	mutated := make([]byte, len(raw))
	copy(mutated, raw)
	mutated[len(mutated)-1] ^= 0xff
	kv.TamperUnderlying(key, mutated)

	alice := testIdentity(t, "alice", 1)
	dst := NewChain(testChainConfig(t, alice))
	if _, err := dst.LoadFromStore(kv); err == nil {
		t.Fatal("tampered snapshot loaded")
	}
}

func TestLoadMissingBlockFails(t *testing.T) {
	src := buildTestChain(t, 4)
	kv := store.NewMemory()
	if err := src.SaveToStore(kv); err != nil {
		t.Fatal(err)
	}
	if err := kv.Delete(persistBlockKey(2)); err != nil {
		t.Fatal(err)
	}
	alice := testIdentity(t, "alice", 1)
	dst := NewChain(testChainConfig(t, alice))
	if _, err := dst.LoadFromStore(kv); err == nil {
		t.Fatal("gap in snapshot not reported")
	}
}

func TestSaveLoadThroughWALFile(t *testing.T) {
	src := buildTestChain(t, 3)
	path := filepath.Join(t.TempDir(), "chain.wal")
	kv, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.SaveToStore(kv); err != nil {
		t.Fatal(err)
	}
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}
	kv2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer kv2.Close()
	alice := testIdentity(t, "alice", 1)
	dst := NewChain(testChainConfig(t, alice))
	if _, err := dst.LoadFromStore(kv2); err != nil {
		t.Fatal(err)
	}
	if dst.StateDigest() != src.StateDigest() {
		t.Fatal("WAL round trip lost state")
	}
}
