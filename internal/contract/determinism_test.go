package contract

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"drams/internal/crypto"
	"drams/internal/idgen"
)

// TestReplicaDeterminism is the replication safety property of the whole
// on-chain layer: two engines fed the same call sequence (as every
// federation node is, via the blockchain) end in byte-identical state and
// emit identical events — regardless of wall-clock, scheduling or host.
func TestReplicaDeterminism(t *testing.T) {
	build := func() (*Engine, *State) {
		r := NewRegistry()
		r.MustRegister(&KVContract{ContractName: "kv"})
		r.MustRegister(&AnchorContract{ContractName: "anchor"})
		return NewEngine(r), NewState()
	}
	e1, s1 := build()
	e2, s2 := build()

	rng := idgen.NewRand(1234)
	callers := []string{"li-1", "li-2", "pap"}
	var calls []struct {
		ctx  CallCtx
		call Call
	}
	for i := 0; i < 300; i++ {
		var call Call
		if rng.Intn(2) == 0 {
			args, _ := json.Marshal(KVArgs{
				Key:   fmt.Sprintf("k%d", rng.Intn(40)),
				Value: rng.Bytes(8),
			})
			method := "put"
			if rng.Intn(10) == 0 {
				method = "del"
			}
			call = Call{Contract: "kv", Method: method, Args: args}
		} else {
			args, _ := json.Marshal(AnchorArgs{
				Stream: fmt.Sprintf("s%d", rng.Intn(3)),
				Seq:    uint64(rng.Intn(20)),
				Root:   crypto.Sum(rng.Bytes(4)),
				Count:  rng.Intn(100),
			})
			call = Call{Contract: "anchor", Method: "anchor", Args: args}
		}
		calls = append(calls, struct {
			ctx  CallCtx
			call Call
		}{
			ctx: CallCtx{
				Height:    uint64(i / 5),
				BlockTime: time.Unix(int64(i), 0),
				TxID:      crypto.Sum([]byte{byte(i), byte(i >> 8)}),
				Caller:    callers[rng.Intn(len(callers))],
			},
			call: call,
		})
	}

	digest := func(e *Engine, s *State) (crypto.Digest, string) {
		var eventLog string
		for _, c := range calls {
			events, err := e.Execute(c.ctx, s, c.call)
			if err != nil {
				eventLog += "ERR:" + c.call.Method + ";"
				continue
			}
			for _, ev := range events {
				eventLog += ev.Type + ":" + string(ev.Payload) + ";"
			}
		}
		return s.Digest(), eventLog
	}

	d1, log1 := digest(e1, s1)
	d2, log2 := digest(e2, s2)
	if d1 != d2 {
		t.Fatal("replicas diverged in state")
	}
	if log1 != log2 {
		t.Fatal("replicas diverged in events")
	}
}
