// Package drams is the public API of the DRAMS reproduction: the
// Decentralised Runtime Access Monitoring System of "Decentralised Runtime
// Monitoring for Access Control Systems in Cloud Federations" (Ferdous,
// Margheri, Paci, Yang, Sassone — ICDCS 2017).
//
// A Deployment assembles the full Figure-1 architecture on one machine:
//
//   - a FaaS federation topology (clouds, edge tenants, the infrastructure
//     tenant) over a simulated network;
//   - the XACML access-control plane: one PDP + PRP in the infrastructure
//     tenant and a PEP at every tenant edge;
//   - a private proof-of-work smart-contract blockchain with one node per
//     cloud, running the DRAMS log-match contract;
//   - a probing agent and a Logging Interface per tenant, encrypting and
//     signing observations;
//   - the Analyser re-deriving expected decisions, and the off-chain
//     Monitor aggregating security alerts.
//
// Quickstart (the client-centric surface):
//
//	dep, err := drams.Open(policy, drams.WithSeed(7))
//	defer dep.Close()
//	client, err := dep.Client("tenant-1")         // per-tenant handle
//	enf, err := client.Decide(ctx, req)           // normal access control
//	enfs, err := client.DecideBatch(ctx, reqs)    // pipelined decisions
//	dep.TamperPEP("tenant-1", &drams.Tamper{      // inject an attack
//	    Enforce: func(xacml.Decision) xacml.Decision { return xacml.Permit },
//	})
//	alerts, stop, err := dep.Alerts(ctx, drams.AlertFilter{}) // streaming alerts
//	defer stop()
//
// The original surface — drams.New(Config), Deployment.Request,
// WaitForAlert/WaitForMatched — keeps working as thin shims over the
// client API.
package drams

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"drams/internal/blockchain"
	"drams/internal/clock"
	"drams/internal/contract"
	"drams/internal/core"
	"drams/internal/crypto"
	"drams/internal/federation"
	"drams/internal/idgen"
	"drams/internal/logger"
	"drams/internal/metrics"
	"drams/internal/netsim"
	"drams/internal/obs"
	"drams/internal/pap"
	"drams/internal/store"
	"drams/internal/transport"
	"drams/internal/transport/tcp"
	"drams/internal/xacml"
)

// Re-exported aliases so example applications can use the drams package as
// the single entry point for common types.
type (
	// Enforcement is what a PEP returns to the application.
	Enforcement = federation.Enforcement
	// Alert is a DRAMS security alert.
	Alert = core.Alert
	// AlertType classifies alerts.
	AlertType = core.AlertType
	// AlertFilter selects which monitor events a subscription receives.
	AlertFilter = core.AlertFilter
	// Tamper injects attacks at a PEP's data path.
	Tamper = federation.Tamper
)

// AlertMatched is the synthetic stream event emitted on subscription
// channels when an exchange completes cleanly on-chain.
const AlertMatched = core.AlertMatched

// Config configures a Deployment. The zero value plus a Policy is usable.
type Config struct {
	// Topology describes the federation; defaults to two clouds with one
	// edge tenant each plus the infrastructure tenant (Figure 1).
	Topology *federation.Topology
	// Policy is the initial access-control policy set (required).
	Policy *xacml.PolicySet
	// Difficulty is the PoW difficulty in leading-zero bits (default 8).
	Difficulty uint8
	// TimeoutBlocks is the log-match M3 window Δ (default 5 blocks).
	TimeoutBlocks uint64
	// RequireVerdict demands an analyser verdict per request (default
	// true; set DisableVerdicts to opt out).
	DisableVerdicts bool
	// EmptyBlockInterval keeps blocks flowing when idle (default 25ms).
	EmptyBlockInterval time.Duration
	// SubmitMode is the LI submission mode (default async).
	SubmitMode logger.SubmitMode
	// LogFlushWindow caps how many probe records each LI anchors under one
	// Merkle-rooted batch transaction (default 16; 1 disables batching).
	LogFlushWindow int
	// MonitorOff disables probes, analyser and monitor entirely — the
	// baseline for overhead experiments.
	MonitorOff bool
	// NetLatency/NetJitter shape the federation network.
	NetLatency, NetJitter time.Duration
	// Seed makes network behaviour and request IDs reproducible.
	Seed uint64
	// MaxTxPerBlock caps block size (default 256).
	MaxTxPerBlock int
	// PEPTimeout bounds a PEP's wait for the PDP (default 5s).
	PEPTimeout time.Duration
	// UseTPM seals the shared LI key in a per-tenant SoftTPM and unseals
	// it at LI boot (the §III System Integrity mitigation).
	UseTPM bool
	// MineAll makes every cloud's node mine (more realistic, more forks).
	// Default: only the infrastructure cloud's node mines while all nodes
	// validate and gossip — the designated-producer configuration a
	// private federation chain would use.
	MineAll bool
	// VerifyWorkers sizes each node's signature-verification worker pool
	// for block validation and batched gossip admission (default
	// GOMAXPROCS).
	VerifyWorkers int
	// VerifyCacheSize bounds each node's verified-transaction LRU, which
	// lets gossip duplicates and block validation skip re-verifying
	// signatures checked at mempool admission (default 8192; negative
	// disables the cache).
	VerifyCacheSize int
	// SequentialVerify disables the batch-verification pipeline: every
	// signature is checked inline, one at a time — the pre-pipeline
	// baseline for overhead experiments.
	SequentialVerify bool
	// DecisionCacheSize bounds the PDP decision cache in entries (default
	// 4096). Cached decisions are keyed by canonical request attributes
	// and the active policy-set digest, so results are bit-for-bit what
	// full evaluation produces.
	DecisionCacheSize int
	// DisableDecisionCache evaluates every request from scratch — the
	// overhead baseline.
	DisableDecisionCache bool
	// RemoteAgents separates probing agents from their Logging Interfaces:
	// each LI exposes its §II network endpoints and agents submit raw
	// observations over the tenant network (the LI derives digests, tags
	// and encryption, so K never leaves the LI). Default: in-process
	// agents.
	RemoteAgents bool
	// Transport supplies the wire backend the deployment runs on. Default:
	// a netsim.Network shaped by NetLatency/NetJitter/Seed. Providing a
	// transport (e.g. a transport/tcp instance) makes the deployment's
	// components reachable from other processes; NetLatency/NetJitter are
	// then ignored and netsim-only fault injection (Deployment.Net) is
	// unavailable.
	Transport transport.Transport
	// ListenAddr, when set (and Transport is nil), builds a TCP transport
	// listening on this host:port instead of the netsim default.
	ListenAddr string
	// TransportPeers seeds the TCP transport built for ListenAddr with
	// other processes' advertise addresses.
	TransportPeers []string
	// DataDir, when set, makes every chain node durable: each cloud's node
	// opens a WAL-backed store under this directory, re-validates and
	// replays its persisted chain at construction, and persists every
	// accepted block incrementally from then on. Reopening a deployment
	// with the same DataDir (and seed/topology) resumes the chain instead
	// of starting a fresh genesis, and the policy watcher reconciles with
	// the restored on-chain policy state — the initial Policy is only
	// published when the chain has no active policy yet.
	DataDir string
}

// Deployment is a running DRAMS federation.
type Deployment struct {
	cfg      Config
	topology *federation.Topology

	// Transport is the wire backend everything runs on.
	Transport transport.Transport
	// Net is the netsim view of Transport when the deployment runs on the
	// simulator (the default) — the handle for fault injection (Partition,
	// SetLinkFault, ...). Nil when a real transport was supplied.
	Net   *netsim.Network
	Nodes map[string]*blockchain.Node // by cloud name

	ownsTransport bool

	PDP          *xacml.PDP
	PDPService   *federation.PDPService
	PRP          *xacml.PRP
	PEPs         map[string]*federation.PEPService // by tenant
	LIs          map[string]*logger.LI             // by tenant
	Agents       map[string]*logger.Agent          // by tenant (in-process mode)
	RemoteAgents map[string]*logger.RemoteAgent    // by tenant (RemoteAgents mode)
	Analyser     *core.Analyser
	Monitor      *core.Monitor
	TPMs         map[string]*crypto.SoftTPM // by tenant (when UseTPM)

	Key crypto.Key

	registry *metrics.Registry
	gatherer *obs.Gatherer
	tracer   *obs.Tracer
	health   *obs.Health

	papID      *crypto.Identity
	papAdmin   *pap.Admin
	watcher    *pap.Watcher
	ids        *idgen.Generator
	registered []string    // endpoint addresses to release on Close (caller-owned transport)
	stores     []*store.KV // per-node durable chain stores (DataDir mode)
	closed     bool
}

// probe is what a tenant's agent must implement for both hook points.
type probe interface {
	federation.PEPProbe
	federation.PDPProbe
}

// probeFor returns the tenant's agent regardless of agent mode.
func (d *Deployment) probeFor(tenant string) probe {
	if a, ok := d.RemoteAgents[tenant]; ok {
		return a
	}
	return d.Agents[tenant]
}

// New assembles and starts a deployment.
func New(cfg Config) (*Deployment, error) {
	if cfg.Policy == nil {
		return nil, errors.New("drams: Config.Policy is required")
	}
	if cfg.Topology == nil {
		cfg.Topology = federation.SimpleTopology("faas", 2)
	}
	if err := cfg.Topology.Validate(); err != nil {
		return nil, err
	}
	if cfg.Difficulty == 0 {
		cfg.Difficulty = 8
	}
	if cfg.TimeoutBlocks == 0 {
		cfg.TimeoutBlocks = 5
	}
	if cfg.EmptyBlockInterval == 0 {
		cfg.EmptyBlockInterval = 25 * time.Millisecond
	}
	if cfg.SubmitMode == 0 {
		cfg.SubmitMode = logger.SubmitAsync
	}
	if cfg.MaxTxPerBlock == 0 {
		cfg.MaxTxPerBlock = 256
	}

	d := &Deployment{
		cfg:          cfg,
		topology:     cfg.Topology,
		Nodes:        make(map[string]*blockchain.Node),
		PEPs:         make(map[string]*federation.PEPService),
		LIs:          make(map[string]*logger.LI),
		Agents:       make(map[string]*logger.Agent),
		RemoteAgents: make(map[string]*logger.RemoteAgent),
		TPMs:         make(map[string]*crypto.SoftTPM),
		ids:          idgen.NewSeeded(cfg.Seed + 1),
	}
	d.initObservability()
	switch {
	case cfg.Transport != nil:
		d.Transport = cfg.Transport
		d.Net, _ = cfg.Transport.(*netsim.Network)
	case cfg.ListenAddr != "":
		tt, err := tcp.New(tcp.Config{ListenAddr: cfg.ListenAddr, Peers: cfg.TransportPeers})
		if err != nil {
			return nil, fmt.Errorf("drams: tcp transport: %w", err)
		}
		d.Transport = tt
		d.ownsTransport = true
	default:
		d.Net = netsim.New(netsim.Config{
			BaseLatency: cfg.NetLatency,
			Jitter:      cfg.NetJitter,
			Seed:        cfg.Seed,
		})
		d.Transport = d.Net
		d.ownsTransport = true
	}
	// Consensus material (identities, allowlist, shared key, contract
	// registry, chain config) — derived through the same helper the
	// drams-node daemon uses, so both construction paths agree.
	var tenantNames []string
	for _, ten := range d.topology.Tenants {
		tenantNames = append(tenantNames, ten.Name)
	}
	material := NewChainMaterial(cfg.Seed, tenantNames, ChainParams{
		Difficulty:       cfg.Difficulty,
		MaxTxPerBlock:    cfg.MaxTxPerBlock,
		TimeoutBlocks:    cfg.TimeoutBlocks,
		RequireVerdict:   !cfg.DisableVerdicts && !cfg.MonitorOff,
		VerifyWorkers:    cfg.VerifyWorkers,
		VerifyCacheSize:  cfg.VerifyCacheSize,
		SequentialVerify: cfg.SequentialVerify,
	})
	d.Key = material.Key
	liIdentities := material.LIIdentities
	analyserID, papID := material.AnalyserID, material.PAPID
	chainCfg := material.Chain

	infra, err := d.topology.InfrastructureTenant()
	if err != nil {
		d.Close()
		return nil, err
	}

	// One chain node per cloud. By default only the infrastructure
	// cloud's node mines (designated producer); every node validates.
	var nodeNames []string
	for _, c := range d.topology.Clouds {
		nodeNames = append(nodeNames, "node@"+c.Name)
	}
	if cfg.DataDir != "" {
		if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
			d.Close()
			return nil, fmt.Errorf("drams: data dir: %w", err)
		}
	}
	for _, c := range d.topology.Clouds {
		var kv *store.KV
		if cfg.DataDir != "" {
			var err error
			kv, err = store.Open(filepath.Join(cfg.DataDir, "chain-"+c.Name+".wal"))
			if err != nil {
				d.Close()
				return nil, fmt.Errorf("drams: open chain store for %s: %w", c.Name, err)
			}
			d.stores = append(d.stores, kv)
		}
		node, err := blockchain.NewNode(blockchain.NodeConfig{
			Name:               "node@" + c.Name,
			Chain:              chainCfg,
			Network:            d.Transport,
			Peers:              nodeNames,
			Mine:               cfg.MineAll || c.Name == infra.Cloud,
			EmptyBlockInterval: cfg.EmptyBlockInterval,
			Store:              kv,
		})
		if err != nil {
			d.Close()
			return nil, err
		}
		d.Nodes[c.Name] = node
		d.registered = append(d.registered, "node@"+c.Name)
	}
	for _, node := range d.Nodes {
		node.Start()
	}
	infraNode := d.Nodes[infra.Cloud]

	// Access-control plane.
	d.PDP = xacml.NewPDP(nil)
	if !cfg.DisableDecisionCache {
		d.PDP.SetCache(xacml.NewDecisionCache(cfg.DecisionCacheSize))
	}
	d.PRP = xacml.NewPRP()
	d.PDPService, err = federation.NewPDPService(d.Transport, d.PDP)
	if err != nil {
		d.Close()
		return nil, err
	}
	d.registered = append(d.registered, federation.PDPAddr)
	for _, ten := range d.topology.EdgeTenants() {
		pep, err := federation.NewPEPService(d.Transport, ten.Name, cfg.PEPTimeout)
		if err != nil {
			d.Close()
			return nil, err
		}
		d.PEPs[ten.Name] = pep
		d.registered = append(d.registered, federation.PEPAddr(ten.Name))
	}

	d.papID = papID
	d.papAdmin = pap.NewAdmin(infraNode, papID)

	// Monitoring plane (unless disabled).
	if !cfg.MonitorOff {
		for _, ten := range d.topology.Tenants {
			key := d.Key
			if cfg.UseTPM {
				tpm, err := crypto.NewSoftTPM(ten.Name)
				if err != nil {
					d.Close()
					return nil, err
				}
				// Measured boot of the LI component, then seal/unseal K.
				if err := tpm.Extend(1, []byte("li-binary-v1")); err != nil {
					d.Close()
					return nil, err
				}
				handle := tpm.Seal(1<<1, key[:])
				raw, err := tpm.Unseal(handle)
				if err != nil {
					d.Close()
					return nil, fmt.Errorf("drams: TPM unseal for %s: %w", ten.Name, err)
				}
				copy(key[:], raw)
				d.TPMs[ten.Name] = tpm
			}
			li, err := logger.NewLI(logger.LIConfig{
				Name:        "li@" + ten.Name,
				Tenant:      ten.Name,
				Node:        d.Nodes[ten.Cloud],
				Identity:    liIdentities[ten.Name],
				Key:         key,
				Mode:        cfg.SubmitMode,
				FlushWindow: cfg.LogFlushWindow,
			})
			if err != nil {
				d.Close()
				return nil, err
			}
			li.Start()
			d.LIs[ten.Name] = li
			if cfg.RemoteAgents {
				liAddr := "li-endpoint@" + ten.Name
				if err := li.Expose(d.Transport, liAddr); err != nil {
					d.Close()
					return nil, err
				}
				d.registered = append(d.registered, liAddr)
				ra, err := logger.NewRemoteAgent(d.Transport, "agent@"+ten.Name, liAddr)
				if err != nil {
					d.Close()
					return nil, err
				}
				d.RemoteAgents[ten.Name] = ra
				d.registered = append(d.registered, "agent@"+ten.Name)
			} else {
				d.Agents[ten.Name] = logger.NewAgent("agent@"+ten.Name, ten.Name, li, clock.System{})
			}
		}
		// Attach probes.
		for tenant, pep := range d.PEPs {
			pep.SetProbe(d.probeFor(tenant))
		}
		d.PDPService.SetProbe(d.probeFor(infra.Name))

		// Analyser: per Figure 1 it runs in a different cloud section than
		// the access-control components — attach it to a node of another
		// cloud when the federation has one.
		analyserNode := infraNode
		for _, c := range d.topology.Clouds {
			if c.Name != infra.Cloud {
				analyserNode = d.Nodes[c.Name]
				break
			}
		}
		d.Analyser, err = core.NewAnalyser("analyser", analyserNode, analyserID, d.Key)
		if err != nil {
			d.Close()
			return nil, err
		}
		d.Analyser.Start()

		d.Monitor = core.NewMonitor(infraNode, clock.System{})
		d.Monitor.Start()
	}

	// The PAP watcher applies the chain-replicated policy lifecycle
	// locally: it stages announced versions, flips the PDP (purging the
	// decision cache) at each activation height, keeps the PRP and
	// analyser in step, and feeds rollout events into the monitor stream.
	d.watcher, err = pap.NewWatcher(pap.WatcherConfig{
		Node:    infraNode,
		PDP:     d.PDP,
		PRP:     d.PRP,
		OnEvent: d.onPolicyEvent,
	})
	if err != nil {
		d.Close()
		return nil, err
	}
	d.watcher.Start()

	// Publish the initial policy — unless the chain (restored from DataDir
	// or synced from an existing federation) already carries an active
	// policy, in which case the watcher's Sync during Start has applied it
	// and re-publishing would downgrade the whole fleet.
	var activeVersion string
	infraNode.Chain().ReadState(core.PolicyContractName, func(st contract.StateDB) {
		activeVersion, _, _ = core.ReadActivePolicy(st)
	})
	if activeVersion == "" {
		if err := d.PublishPolicy(cfg.Policy); err != nil {
			d.Close()
			return nil, err
		}
	}
	d.wireObservability()
	return d, nil
}

// onPolicyEvent runs on the watcher goroutine for every policy lifecycle
// transition of this deployment.
func (d *Deployment) onPolicyEvent(ev pap.Event) {
	if ev.Kind == pap.EventActivated && d.Analyser != nil {
		// The watcher mirrors activated versions into the PRP before
		// notifying, so the authoritative copy is always available here.
		if ps, err := d.PRP.Version(ev.Version); err == nil {
			d.Analyser.LoadPolicy(ps)
			// Best-effort: the analyser's node may still be syncing; the
			// anchor check re-runs on chain state.
			_ = d.Analyser.VerifyPolicyAnchor()
		}
	}
	if d.Monitor != nil {
		if alert, ok := pap.MonitorEvent(ev); ok {
			d.Monitor.PublishPolicyEvent(alert)
		}
	}
}

// PublishPolicy publishes a policy set as a new on-chain version activated
// immediately: the PAP signs a PolicyUpdate transaction carrying the full
// serialized set, the policy contract anchors and schedules it, and the
// call returns once this deployment's watcher has hot-reloaded the PDP
// (decision cache purged) and analyser. It is a convenience wrapper over
// Admin.UpdatePolicy for the "new version, right now" case.
func (d *Deployment) PublishPolicy(ps *xacml.PolicySet) error {
	if ps == nil || ps.Version == "" {
		return errors.New("drams: policy set with a version is required")
	}
	if _, err := d.PRP.Version(ps.Version); err == nil {
		return fmt.Errorf("drams: version %q already published", ps.Version)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := d.papAdmin.UpdatePolicy(ctx, ps, pap.UpdateOptions{}); err != nil {
		return fmt.Errorf("drams: anchor policy: %w", err)
	}
	if err := d.watcher.WaitForVersion(ctx, ps.Version); err != nil {
		return fmt.Errorf("drams: activate policy: %w", err)
	}
	return nil
}

// NewRequestID mints a correlation ID for an access request.
func (d *Deployment) NewRequestID() string {
	return d.ids.Next().String()
}

// NewRequest builds an empty request with a fresh correlation ID.
func (d *Deployment) NewRequest() *xacml.Request {
	return xacml.NewRequest(d.NewRequestID())
}

// TamperPEP installs attack injection at a tenant's PEP (nil clears).
func (d *Deployment) TamperPEP(tenant string, t *Tamper) error {
	pep, ok := d.PEPs[tenant]
	if !ok {
		return fmt.Errorf("drams: tenant %q has no PEP", tenant)
	}
	pep.SetTamper(t)
	return nil
}

// CompromisePDP swaps the PDP's evaluator through a wrapper — the attack
// framework uses this to model altered evaluation processes. Passing nil
// restores the honest PDP.
func (d *Deployment) CompromisePDP(wrap func(xacml.Evaluator) xacml.Evaluator) {
	if wrap == nil {
		d.PDPService.SetEvaluator(d.PDP)
		return
	}
	d.PDPService.SetEvaluator(wrap(d.PDP))
}

// WaitForAlert blocks until the monitor sees the given alert for reqID. It
// is a shim over a one-shot Alerts subscription.
func (d *Deployment) WaitForAlert(ctx context.Context, reqID string, t AlertType) (Alert, error) {
	if d.Monitor == nil {
		return Alert{}, ErrMonitoringDisabled
	}
	return d.Monitor.WaitForAlert(ctx, reqID, t)
}

// WaitForMatched blocks until the exchange for reqID completed cleanly
// on-chain. It is a shim over a one-shot Alerts subscription.
func (d *Deployment) WaitForMatched(ctx context.Context, reqID string) error {
	if d.Monitor == nil {
		return ErrMonitoringDisabled
	}
	return d.Monitor.WaitForMatched(ctx, reqID)
}

// InfraNode returns the blockchain node of the infrastructure tenant's
// cloud (the monitor's view).
func (d *Deployment) InfraNode() *blockchain.Node {
	infra, err := d.topology.InfrastructureTenant()
	if err != nil {
		return nil
	}
	return d.Nodes[infra.Cloud]
}

// Topology returns the federation topology.
func (d *Deployment) Topology() *federation.Topology { return d.topology }

// Close stops every component. Safe to call more than once.
func (d *Deployment) Close() {
	if d.closed {
		return
	}
	d.closed = true
	if d.watcher != nil {
		d.watcher.Stop()
	}
	if d.Monitor != nil {
		d.Monitor.Stop()
	}
	if d.Analyser != nil {
		d.Analyser.Stop()
	}
	for _, li := range d.LIs {
		li.Stop()
	}
	for _, node := range d.Nodes {
		node.Stop()
	}
	for _, kv := range d.stores {
		kv.Close()
	}
	if d.Transport != nil {
		if d.ownsTransport {
			d.Transport.Close()
		} else {
			// Caller-owned transport: release our addresses so the caller
			// can keep using it (and even open a fresh deployment on it).
			for _, addr := range d.registered {
				d.Transport.Unregister(addr)
			}
		}
	}
}
