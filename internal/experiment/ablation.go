package experiment

import (
	"context"
	"fmt"
	"time"

	"drams"
	"drams/internal/core"
	"drams/internal/federation"
	"drams/internal/logger"
	"drams/internal/metrics"
	"drams/internal/xacml"
)

// Ablations quantify the design choices DESIGN.md calls out: the M3
// timeout window Δ (detection latency vs. patience) and the Analyser
// (which attacks become invisible without it).

// AB1Params parameterise the Δ sweep.
type AB1Params struct {
	TimeoutBlocks []uint64
	Trials        int
}

// DefaultAB1Params sweeps Δ ∈ {5, 10, 20, 40}.
func DefaultAB1Params() AB1Params {
	return AB1Params{TimeoutBlocks: []uint64{5, 10, 20, 40}, Trials: 2}
}

// RunAB1 measures suppression-detection latency as a function of the M3
// window Δ: detecting an *absent* message fundamentally costs Δ blocks, so
// the knob trades detection speed against tolerance for slow pipelines.
func RunAB1(p AB1Params) (Table, error) {
	t := Table{
		ID:     "AB1",
		Title:  "ablation: M3 timeout window Δ vs. suppression-detection latency",
		Header: []string{"timeout_blocks", "trials", "detect_mean_ms", "detect_mean_blocks"},
		Notes: []string{
			"attack: request suppression (A6); detection requires the window to expire",
			"expected shape: latency ≈ Δ × block interval — the structural cost of absence detection",
		},
	}
	for _, delta := range p.TimeoutBlocks {
		dep, err := drams.Open(StandardPolicy("v1"),
			drams.WithDifficulty(8),
			drams.WithTimeoutBlocks(delta),
			drams.WithEmptyBlockInterval(15*time.Millisecond),
			drams.WithSeed(3),
		)
		if err != nil {
			return t, err
		}
		client, err := dep.Client("tenant-1")
		if err != nil {
			dep.Close()
			return t, err
		}
		lat := metrics.NewHistogram(0)
		blocks := metrics.NewHistogram(0)
		for trial := 0; trial < p.Trials; trial++ {
			if err := dep.TamperPEP("tenant-1", &federation.Tamper{DropRequest: true}); err != nil {
				dep.Close()
				return t, err
			}
			req := StandardRequest(dep, trial)
			_, startHeight := dep.InfraNode().Chain().Head()
			t0 := time.Now()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			_, _ = client.Decide(ctx, req)
			alert, err := dep.WaitForAlert(ctx, req.ID, core.AlertMessageSuppressed)
			cancel()
			if err != nil {
				dep.Close()
				return t, fmt.Errorf("AB1 Δ=%d: %w", delta, err)
			}
			lat.ObserveDuration(time.Since(t0))
			blocks.Observe(float64(alert.Height - startHeight))
			_ = dep.TamperPEP("tenant-1", nil)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", delta), fmt.Sprintf("%d", p.Trials),
			msF(lat.Snapshot().Mean), fmt.Sprintf("%.1f", blocks.Snapshot().Mean),
		})
		dep.Close()
	}
	return t, nil
}

// AB2Params parameterise the analyser ablation.
type AB2Params struct {
	Trials int
}

// DefaultAB2Params uses 2 trials per configuration.
func DefaultAB2Params() AB2Params { return AB2Params{Trials: 2} }

// flipEval is a compromised PDP for the ablation (same as attack A4).
type flipEval struct{ inner xacml.Evaluator }

func (f flipEval) Evaluate(r *xacml.Request) (xacml.Result, error) {
	res, err := f.inner.Evaluate(r)
	if err != nil {
		return res, err
	}
	if res.Decision == xacml.Permit {
		res.Decision = xacml.Deny
	} else {
		res.Decision = xacml.Permit
	}
	return res, nil
}

// RunAB2 removes the Analyser and shows exactly what is lost: transit and
// enforcement attacks (M1–M4) are still caught by log matching alone, but a
// compromised PDP that reports a consistent wrong decision (A4) becomes
// invisible — the checks the paper assigns to the Analyser are not
// redundant with the matching algorithms.
func RunAB2(p AB2Params) (Table, error) {
	t := Table{
		ID:     "AB2",
		Title:  "ablation: detection with and without the Analyser (M5)",
		Header: []string{"configuration", "A3 PEP override", "A4 PDP altered", "clean traffic"},
		Notes: []string{
			"cells: detected/trials (A3, A4) and false alerts (clean)",
			"without the analyser, A4 produces a perfectly consistent — and wrong — exchange",
		},
	}
	for _, withAnalyser := range []bool{true, false} {
		opts := []drams.Option{
			drams.WithDifficulty(8),
			drams.WithTimeoutBlocks(15),
			drams.WithEmptyBlockInterval(15 * time.Millisecond),
			drams.WithSeed(4),
		}
		if !withAnalyser {
			opts = append(opts, drams.WithoutVerdicts())
		}
		dep, err := drams.Open(StandardPolicy("v1"), opts...)
		if err != nil {
			return t, err
		}
		if !withAnalyser {
			dep.Analyser.Stop()
		}
		client, err := dep.Client("tenant-1")
		if err != nil {
			dep.Close()
			return t, err
		}

		runAttack := func(install func(), clear func(), alertType core.AlertType) int {
			detected := 0
			for trial := 0; trial < p.Trials; trial++ {
				install()
				req := dep.NewRequest().
					Add(xacml.CatSubject, "role", xacml.String("intern")).
					Add(xacml.CatAction, "op", xacml.String("read"))
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				_, _ = client.Decide(ctx, req)
				if _, err := dep.WaitForAlert(ctx, req.ID, alertType); err == nil {
					detected++
				}
				cancel()
				clear()
			}
			return detected
		}

		a3 := runAttack(
			func() {
				_ = dep.TamperPEP("tenant-1", &federation.Tamper{
					Enforce: func(xacml.Decision) xacml.Decision { return xacml.Permit },
				})
			},
			func() { _ = dep.TamperPEP("tenant-1", nil) },
			core.AlertEnforcementMismatch,
		)
		a4 := runAttack(
			func() {
				dep.CompromisePDP(func(inner xacml.Evaluator) xacml.Evaluator { return flipEval{inner: inner} })
			},
			func() { dep.CompromisePDP(nil) },
			core.AlertDecisionIncorrect,
		)

		// Clean traffic must match (and raise nothing) in both configs.
		req := StandardRequest(dep, 0)
		cleanAlerts := "-"
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if _, err := client.Decide(ctx, req); err == nil {
			if err := dep.WaitForMatched(ctx, req.ID); err == nil {
				cleanAlerts = fmt.Sprintf("%d false alerts", len(dep.Monitor.AlertsFor(req.ID)))
			}
		}
		cancel()

		label := "full DRAMS (with analyser)"
		if !withAnalyser {
			label = "ablated (no analyser)"
		}
		t.Rows = append(t.Rows, []string{
			label,
			fmt.Sprintf("%d/%d", a3, p.Trials),
			fmt.Sprintf("%d/%d", a4, p.Trials),
			cleanAlerts,
		})
		dep.Close()
	}
	return t, nil
}

// AB3Params parameterise the submission-mode ablation.
type AB3Params struct {
	Requests int
}

// DefaultAB3Params uses 24 requests per mode.
func DefaultAB3Params() AB3Params { return AB3Params{Requests: 24} }

// RunAB3 ablates the LI's asynchronous submission: synchronous (mempool
// ack) and confirmed (on-chain) modes strengthen the logging guarantee at
// increasing enforcement-latency cost; the async default moves all of it
// off the critical path.
func RunAB3(p AB3Params) (Table, error) {
	t := Table{
		ID:     "AB3",
		Title:  "ablation: LI submission mode vs. enforcement latency",
		Header: []string{"mode", "guarantee_at_return", "p50_ms", "p99_ms"},
	}
	modes := []struct {
		label, guarantee string
		mode             logger.SubmitMode
	}{
		{"async", "queued locally", logger.SubmitAsync},
		{"sync", "accepted by mempool", logger.SubmitSync},
		{"confirmed", "mined on-chain", logger.SubmitConfirmed},
	}
	for _, m := range modes {
		dep, err := NewStandardDeployment(2, m.mode, false, 1<<20)
		if err != nil {
			return t, err
		}
		client, err := dep.Client("tenant-1")
		if err != nil {
			dep.Close()
			return t, err
		}
		lat := metrics.NewHistogram(0)
		for i := 0; i < p.Requests; i++ {
			req := StandardRequest(dep, i)
			t0 := time.Now()
			if _, err := client.Decide(context.Background(), req); err != nil {
				dep.Close()
				return t, fmt.Errorf("AB3 %s: %w", m.label, err)
			}
			lat.ObserveDuration(time.Since(t0))
		}
		s := lat.Snapshot()
		t.Rows = append(t.Rows, []string{m.label, m.guarantee, msF(s.P50), msF(s.P99)})
		dep.Close()
	}
	return t, nil
}
