package experiment

import (
	"context"
	"fmt"
	"time"

	"drams/internal/federation"
	"drams/internal/netsim"
	"drams/internal/transport"
	"drams/internal/transport/tcp"
	"drams/internal/xacml"
)

// V4Params parameterise the transport comparison: the same PEP→PDP decision
// traffic over the in-process simulator vs the real TCP stack on loopback.
type V4Params struct {
	// Requests is the total number of decisions measured per mode.
	Requests int
	// Batch is the DecideBatch pipeline depth.
	Batch int
}

// DefaultV4Params measures 512 decisions sequentially and in batches of 64.
func DefaultV4Params() V4Params { return V4Params{Requests: 512, Batch: 64} }

// v4Backend is one transport universe holding a PEP and a PDP, possibly in
// different transport instances (TCP: every call crosses loopback).
type v4Backend struct {
	name  string
	pep   *federation.PEPService
	close func()
}

// newV4Netsim wires PEP and PDP over the default simulator (no injected
// latency) — the single-process baseline every experiment so far ran on.
func newV4Netsim(policy *xacml.PolicySet) (*v4Backend, error) {
	net := netsim.New(netsim.Config{Seed: 4})
	pdp := xacml.NewPDP(nil)
	pdp.SetCache(xacml.NewDecisionCache(0))
	pdp.Load(policy)
	if _, err := federation.NewPDPService(net, pdp); err != nil {
		net.Close()
		return nil, err
	}
	pep, err := federation.NewPEPService(net, "tenant-1", 30*time.Second)
	if err != nil {
		net.Close()
		return nil, err
	}
	return &v4Backend{name: "netsim", pep: pep, close: func() { net.Close() }}, nil
}

// newV4TCP puts the PDP and the PEP on two TCP transports peered over
// loopback, so every Decide round-trip crosses real sockets and the
// length-prefixed frame codec.
func newV4TCP(policy *xacml.PolicySet) (*v4Backend, error) {
	pdpTr, err := tcp.New(tcp.Config{ListenAddr: "127.0.0.1:0"})
	if err != nil {
		return nil, err
	}
	pepTr, err := tcp.New(tcp.Config{ListenAddr: "127.0.0.1:0", Peers: []string{pdpTr.Advertise()}})
	if err != nil {
		pdpTr.Close()
		return nil, err
	}
	closeAll := func() { pepTr.Close(); pdpTr.Close() }

	pdp := xacml.NewPDP(nil)
	pdp.SetCache(xacml.NewDecisionCache(0))
	pdp.Load(policy)
	if _, err := federation.NewPDPService(pdpTr, pdp); err != nil {
		closeAll()
		return nil, err
	}
	pep, err := federation.NewPEPService(pepTr, "tenant-1", 30*time.Second)
	if err != nil {
		closeAll()
		return nil, err
	}
	if err := v4WaitAddr(pepTr, federation.PDPAddr, 10*time.Second); err != nil {
		closeAll()
		return nil, err
	}
	return &v4Backend{name: "tcp-loopback", pep: pep, close: closeAll}, nil
}

func v4WaitAddr(tr transport.Transport, addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for _, a := range tr.Addresses() {
			if a == addr {
				return nil
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	return fmt.Errorf("V4: %q never became routable", addr)
}

// RunV4 measures access-decision throughput through the PEP over both
// transport backends: strictly sequential Decide and pipelined DecideBatch.
// Decisions are cross-checked between backends — the transports must be
// semantically interchangeable, not just both fast.
func RunV4(p V4Params) (Table, error) {
	t := Table{
		ID:     "V4",
		Title:  "transport backends: decision throughput over netsim vs TCP loopback",
		Header: []string{"transport", "decide_seq_req_s", fmt.Sprintf("batch%d_req_s", p.Batch), "batch_vs_seq"},
		Notes: []string{
			fmt.Sprintf("%d decisions per mode, PEP and PDP on separate transport instances (TCP: real loopback sockets)", p.Requests),
			"decide_seq: one Decide at a time; batch: DecideBatch pipelines of the given depth",
			"identical requests and policy on both backends; decisions cross-checked for equality",
		},
	}
	if p.Batch < 1 || p.Requests%p.Batch != 0 {
		return t, fmt.Errorf("V4: batch %d must divide Requests %d", p.Batch, p.Requests)
	}
	policy := StandardPolicy("v1")
	newReqs := func() []*xacml.Request {
		reqs := make([]*xacml.Request, p.Requests)
		roles := []string{"doctor", "nurse", "intern"}
		ops := []string{"read", "write"}
		for i := range reqs {
			reqs[i] = xacml.NewRequest(fmt.Sprintf("v4-%d", i)).
				Add(xacml.CatSubject, "role", xacml.String(roles[i%len(roles)])).
				Add(xacml.CatAction, "op", xacml.String(ops[(i/3)%len(ops)])).
				Add(xacml.CatResource, "type", xacml.String("record"))
		}
		return reqs
	}

	backends := []func(*xacml.PolicySet) (*v4Backend, error){newV4Netsim, newV4TCP}
	var reference []xacml.Decision
	ctx := context.Background()
	for _, newBackend := range backends {
		b, err := newBackend(policy)
		if err != nil {
			return t, err
		}
		// Warm-up pass: decision cache, connections, JIT paths.
		if _, err := b.pep.DecideBatch(ctx, newReqs()); err != nil {
			b.close()
			return t, fmt.Errorf("V4 %s warm-up: %w", b.name, err)
		}

		decisions := make([]xacml.Decision, p.Requests)
		seqStart := time.Now()
		for i, req := range newReqs() {
			enf, err := b.pep.Decide(ctx, req)
			if err != nil {
				b.close()
				return t, fmt.Errorf("V4 %s sequential: %w", b.name, err)
			}
			decisions[i] = enf.Decision
		}
		seqElapsed := time.Since(seqStart)

		batchReqs := newReqs()
		batchStart := time.Now()
		for off := 0; off < len(batchReqs); off += p.Batch {
			enfs, err := b.pep.DecideBatch(ctx, batchReqs[off:off+p.Batch])
			if err != nil {
				b.close()
				return t, fmt.Errorf("V4 %s batch: %w", b.name, err)
			}
			for i, enf := range enfs {
				if enf.Decision != decisions[off+i] {
					b.close()
					return t, fmt.Errorf("V4 %s req %d: batch %v != sequential %v",
						b.name, off+i, enf.Decision, decisions[off+i])
				}
			}
		}
		batchElapsed := time.Since(batchStart)
		b.close()

		if reference == nil {
			reference = decisions
		} else {
			for i := range decisions {
				if decisions[i] != reference[i] {
					return t, fmt.Errorf("V4 req %d: %s decided %v, first backend %v",
						i, b.name, decisions[i], reference[i])
				}
			}
		}
		seqRate := float64(p.Requests) / seqElapsed.Seconds()
		batchRate := float64(p.Requests) / batchElapsed.Seconds()
		t.Rows = append(t.Rows, []string{
			b.name,
			rate(p.Requests, seqElapsed),
			rate(p.Requests, batchElapsed),
			fmt.Sprintf("%.1fx", batchRate/seqRate),
		})
	}
	return t, nil
}
