package obs

import (
	"fmt"
	"sort"
	"sync"
)

// Health aggregates named readiness checks. Liveness ("is the process
// up") is implicit — a served /healthz answers 200 by existing; readiness
// ("should this member receive traffic / count as joined") is the AND of
// every registered check. Checks run at probe time and must be fast and
// lock-light: the daemon registers closures over chain catch-up state and
// policy-watcher staleness.
type Health struct {
	mu     sync.Mutex
	checks map[string]func() error
}

// NewHealth returns an empty Health (always ready).
func NewHealth() *Health {
	return &Health{checks: make(map[string]func() error)}
}

// AddReady registers (or replaces) a named readiness check. fn returns
// nil when the aspect is ready, an error describing why not otherwise.
func (h *Health) AddReady(name string, fn func() error) {
	if h == nil || fn == nil {
		return
	}
	h.mu.Lock()
	h.checks[name] = fn
	h.mu.Unlock()
}

// Ready runs every check. It returns true when all pass; otherwise false
// plus one "name: reason" line per failing check, sorted by name.
func (h *Health) Ready() (bool, []string) {
	if h == nil {
		return true, nil
	}
	h.mu.Lock()
	checks := make(map[string]func() error, len(h.checks))
	for name, fn := range h.checks {
		checks[name] = fn
	}
	h.mu.Unlock()

	var failures []string
	for name, fn := range checks {
		if err := fn(); err != nil {
			failures = append(failures, fmt.Sprintf("%s: %v", name, err))
		}
	}
	sort.Strings(failures)
	return len(failures) == 0, failures
}
