// Package lint is a stdlib-only static-analysis framework plus the suite
// of analyzers that keep this repo's architectural invariants mechanical:
// every rule here was established by fixing a real bug in an earlier PR
// (see docs/ARCHITECTURE.md §13 for the analyzer→bug table), and
// cmd/drams-lint fails CI when one regresses.
//
// The framework deliberately avoids golang.org/x/tools: package discovery
// is driven by `go list -json`, files are parsed with go/parser, and
// packages are type-checked in dependency order with go/types behind a
// source-backed importer for module packages (out-of-module dependencies —
// the stdlib — resolve through compiled gc export data from
// `go list -export`). Type-checked module packages are cached per import
// path so each package is checked at most twice: once clean (the variant
// other packages import) and once augmented with its in-package _test.go
// files (the variant analyzers inspect).
package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is the subset of a `go list -json` record the framework needs.
type Package struct {
	ImportPath   string
	Name         string
	Dir          string
	Standard     bool
	Export       string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Imports      []string
	TestImports  []string
	XTestImports []string
	Module       *ModuleInfo
	Error        *PackageError
}

// ModuleInfo identifies the module a package belongs to.
type ModuleInfo struct {
	Path string
	Dir  string
	Main bool
}

// PackageError is a `go list` load error attached to a package.
type PackageError struct {
	Err string
}

// Graph is the import graph handed to every analyzer pass: all packages
// `go list` reported (the module's own packages and their external
// dependency closure), keyed by import path.
type Graph struct {
	// Module is the path of the module under analysis (e.g. "drams").
	Module string
	// Dir is the module root directory; finding paths are rendered
	// relative to it.
	Dir string
	// Packages maps import path → metadata for every known package.
	Packages map[string]*Package
}

// Rel returns the module-relative package path ("" for the module root,
// "internal/obs" for drams/internal/obs) and whether the import path lies
// inside the module under analysis. Analyzer configuration uses these
// relative paths so fixtures under any module name exercise the same
// rules.
func (g *Graph) Rel(importPath string) (string, bool) {
	if importPath == g.Module {
		return "", true
	}
	if rest, ok := strings.CutPrefix(importPath, g.Module+"/"); ok {
		return rest, true
	}
	return "", false
}

// IsStdlib reports whether the import path is a standard-library package.
func (g *Graph) IsStdlib(importPath string) bool {
	if importPath == "unsafe" {
		return true
	}
	p, ok := g.Packages[importPath]
	return ok && p.Standard
}

// Unit is one analyzable package variant: the package's non-test files
// plus its in-package _test.go files type-checked together, or (XTest) an
// external test package checked on its own.
type Unit struct {
	Pkg   *Package
	XTest bool
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	testFiles map[*ast.File]bool
}

// Program is a loaded, type-checked module ready for analysis.
type Program struct {
	Fset  *token.FileSet
	Graph *Graph
	Units []*Unit

	loader *loader
}

// LookupObject resolves an exported object in a module package by its
// module-relative path (e.g. "internal/transport", "Endpoint"). Nil when
// the package is not part of the module or lacks the name. Analyzers use
// it to reach canonical types (interfaces, sentinels) declared outside the
// package under analysis.
func (p *Program) LookupObject(relPath, name string) types.Object {
	full := p.Graph.Module
	if relPath != "" {
		full += "/" + relPath
	}
	if _, ok := p.Graph.Packages[full]; !ok {
		return nil
	}
	bp, err := p.loader.cleanVariant(full)
	if err != nil || bp == nil {
		return nil
	}
	return bp.types.Scope().Lookup(name)
}

// builtPkg is a fully checked clean (non-test) package variant.
type builtPkg struct {
	files []*ast.File
	types *types.Package
	info  *types.Info
}

// loader drives discovery and type-checking; it implements types.Importer.
type loader struct {
	dir   string
	fset  *token.FileSet
	graph *Graph
	gc    types.Importer

	clean    map[string]*builtPkg // import-facing variants, by path
	building map[string]bool      // cycle guard
}

// Load discovers the packages matched by patterns (run through `go list`
// in dir), type-checks them in dependency order, and returns the program.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	fset := token.NewFileSet()

	mod, err := goListModule(dir)
	if err != nil {
		return nil, err
	}
	pkgs, err := goList(dir, append([]string{"-json"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	graph := &Graph{Module: mod.Path, Dir: mod.Dir, Packages: map[string]*Package{}}
	var modulePkgs []*Package
	for _, p := range pkgs {
		if p.Error != nil {
			return nil, fmt.Errorf("lint: load %s: %s", p.ImportPath, p.Error.Err)
		}
		graph.Packages[p.ImportPath] = p
		modulePkgs = append(modulePkgs, p)
	}

	// Resolve the external (stdlib) dependency closure so the gc importer
	// can find export data for every transitively referenced package.
	ext := map[string]bool{}
	for _, p := range modulePkgs {
		for _, imps := range [][]string{p.Imports, p.TestImports, p.XTestImports} {
			for _, ip := range imps {
				if ip == "C" || ip == "unsafe" {
					continue
				}
				if _, inMod := graph.Rel(ip); !inMod {
					ext[ip] = true
				}
			}
		}
	}
	if len(ext) > 0 {
		roots := make([]string, 0, len(ext))
		for ip := range ext {
			roots = append(roots, ip)
		}
		sort.Strings(roots)
		deps, err := goList(dir, append([]string{"-export", "-json", "-deps"}, roots...)...)
		if err != nil {
			return nil, err
		}
		for _, p := range deps {
			if _, dup := graph.Packages[p.ImportPath]; !dup {
				graph.Packages[p.ImportPath] = p
			}
		}
	}

	l := &loader{
		dir:      dir,
		fset:     fset,
		graph:    graph,
		clean:    map[string]*builtPkg{},
		building: map[string]bool{},
	}
	l.gc = importer.ForCompiler(fset, "gc", l.exportLookup)

	prog := &Program{Fset: fset, Graph: graph, loader: l}
	for _, p := range topoSort(graph, modulePkgs) {
		units, err := l.checkPackage(p)
		if err != nil {
			return nil, err
		}
		prog.Units = append(prog.Units, units...)
	}
	return prog, nil
}

// exportLookup feeds the gc importer compiled export data recorded by
// `go list -export` for out-of-module packages.
func (l *loader) exportLookup(path string) (io.ReadCloser, error) {
	p, ok := l.graph.Packages[path]
	if !ok || p.Export == "" {
		return nil, fmt.Errorf("lint: no export data for %q", path)
	}
	return os.Open(p.Export)
}

// Import resolves an import during type checking: module packages come
// from the source-backed clean cache (built on demand in dependency
// order), everything else from gc export data.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, inMod := l.graph.Rel(path); inMod {
		bp, err := l.cleanVariant(path)
		if err != nil {
			return nil, err
		}
		return bp.types, nil
	}
	return l.gc.Import(path)
}

// cleanVariant type-checks (once) the non-test files of a module package.
func (l *loader) cleanVariant(path string) (*builtPkg, error) {
	if bp, ok := l.clean[path]; ok {
		return bp, nil
	}
	p, ok := l.graph.Packages[path]
	if !ok {
		return nil, fmt.Errorf("lint: unknown module package %q", path)
	}
	if l.building[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.building[path] = true
	defer delete(l.building, path)

	files, err := l.parseFiles(p, p.GoFiles)
	if err != nil {
		return nil, err
	}
	tp, info, err := l.typeCheck(path, files)
	if err != nil {
		return nil, err
	}
	bp := &builtPkg{files: files, types: tp, info: info}
	l.clean[path] = bp
	return bp, nil
}

// checkPackage builds the analyzable unit(s) for one module package: the
// (test-augmented, when _test.go files exist) in-package variant and, when
// present, the external test package.
func (l *loader) checkPackage(p *Package) ([]*Unit, error) {
	var units []*Unit
	testFiles := map[*ast.File]bool{}

	if len(p.TestGoFiles) == 0 {
		bp, err := l.cleanVariant(p.ImportPath)
		if err != nil {
			return nil, err
		}
		units = append(units, &Unit{Pkg: p, Files: bp.files, Types: bp.types, Info: bp.info, testFiles: testFiles})
	} else {
		files, err := l.parseFiles(p, p.GoFiles)
		if err != nil {
			return nil, err
		}
		tfs, err := l.parseFiles(p, p.TestGoFiles)
		if err != nil {
			return nil, err
		}
		for _, f := range tfs {
			testFiles[f] = true
		}
		files = append(files, tfs...)
		tp, info, err := l.typeCheck(p.ImportPath, files)
		if err != nil {
			return nil, err
		}
		units = append(units, &Unit{Pkg: p, Files: files, Types: tp, Info: info, testFiles: testFiles})
	}

	if len(p.XTestGoFiles) > 0 {
		xfs, err := l.parseFiles(p, p.XTestGoFiles)
		if err != nil {
			return nil, err
		}
		tp, info, err := l.typeCheck(p.ImportPath+"_test", xfs)
		if err != nil {
			return nil, err
		}
		xTestFiles := map[*ast.File]bool{}
		for _, f := range xfs {
			xTestFiles[f] = true
		}
		units = append(units, &Unit{Pkg: p, XTest: true, Files: xfs, Types: tp, Info: info, testFiles: xTestFiles})
	}
	return units, nil
}

func (l *loader) parseFiles(p *Package, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse: %w", err)
		}
		files = append(files, f)
	}
	return files, nil
}

func (l *loader) typeCheck(path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var errs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { errs = append(errs, err) },
	}
	tp, err := conf.Check(path, l.fset, files, info)
	if len(errs) > 0 {
		return nil, nil, fmt.Errorf("lint: type-check %s: %w", path, errs[0])
	}
	if err != nil {
		return nil, nil, fmt.Errorf("lint: type-check %s: %w", path, err)
	}
	return tp, info, nil
}

// topoSort orders module packages so dependencies precede dependents;
// ordering by import depth keeps the on-demand clean builds shallow.
func topoSort(g *Graph, pkgs []*Package) []*Package {
	inMod := map[string]*Package{}
	for _, p := range pkgs {
		inMod[p.ImportPath] = p
	}
	var order []*Package
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(p *Package)
	visit = func(p *Package) {
		if state[p.ImportPath] != 0 {
			return
		}
		state[p.ImportPath] = 1
		for _, ip := range p.Imports {
			if dep, ok := inMod[ip]; ok {
				visit(dep)
			}
		}
		state[p.ImportPath] = 2
		order = append(order, p)
	}
	sorted := append([]*Package(nil), pkgs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ImportPath < sorted[j].ImportPath })
	for _, p := range sorted {
		visit(p)
	}
	return order
}

type moduleID struct {
	Path string
	Dir  string
}

func goListModule(dir string) (*moduleID, error) {
	out, err := runGo(dir, "list", "-m", "-json")
	if err != nil {
		return nil, err
	}
	var m moduleID
	if err := json.NewDecoder(bytes.NewReader(out)).Decode(&m); err != nil {
		return nil, fmt.Errorf("lint: decode module info: %w", err)
	}
	if m.Path == "" || m.Dir == "" {
		return nil, fmt.Errorf("lint: %s is not inside a module", dir)
	}
	return &m, nil
}

func goList(dir string, args ...string) ([]*Package, error) {
	out, err := runGo(dir, append([]string{"list", "-e"}, args...)...)
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*Package
	for {
		var p Package
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decode go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

func runGo(dir string, args ...string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("lint: go %s: %s", strings.Join(args, " "), msg)
	}
	return out, nil
}
