// Hybrid store: the database+blockchain design of the paper's §III (ref
// [9]). Writes hit a local database at database speed; Merkle roots of
// write batches are anchored on the federation chain; audits detect any
// tampering of anchored data, and membership proofs let third parties
// verify single entries against the chain.
//
//	go run ./examples/hybridstore
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"drams/internal/blockchain"
	"drams/internal/contract"
	"drams/internal/core"
	"drams/internal/crypto"
	"drams/internal/hybrid"
	"drams/internal/merkle"
	"drams/internal/netsim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hybridstore:", err)
		os.Exit(1)
	}
}

func run() error {
	// One-node federation chain with the anchor contract.
	var seed [32]byte
	seed[0] = 42
	writer := crypto.NewIdentityFromSeed("li@records", seed)
	registry := contract.NewRegistry()
	registry.MustRegister(&contract.AnchorContract{ContractName: "anchor"})
	registry.MustRegister(core.NewLogMatchContract(core.MatchConfig{TimeoutBlocks: 1 << 20}))
	net := netsim.New(netsim.Config{Seed: 8})
	defer net.Close()
	node, err := blockchain.NewNode(blockchain.NodeConfig{
		Name: "chain-node",
		Chain: blockchain.Config{
			Difficulty: 8,
			Identities: []crypto.PublicIdentity{writer.Public()},
			Registry:   registry,
		},
		Network:            net,
		Mine:               true,
		EmptyBlockInterval: 20 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	node.Start()
	defer node.Stop()

	hs, err := hybrid.Open(hybrid.Config{
		Stream:            "access-logs",
		BatchSize:         8,
		Sender:            blockchain.NewSender(node, writer),
		Node:              node,
		WaitConfirmations: 1,
	})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	fmt.Println("writing 24 access-log entries (batch size 8 → 3 anchors)...")
	start := time.Now()
	for i := 0; i < 24; i++ {
		key := fmt.Sprintf("access/%04d", i)
		val := fmt.Sprintf("user-%d read record-%d", i%5, i)
		if err := hs.Put(ctx, key, []byte(val)); err != nil {
			return err
		}
	}
	st := hs.Stats()
	fmt.Printf("done in %s — %d writes, %d anchors on-chain, %d pending\n",
		time.Since(start).Round(time.Millisecond), st.Writes, st.AnchorsSubmitted, st.PendingEntries)

	fmt.Println("\naudit #1 (clean):")
	rep := hs.Audit()
	fmt.Printf("  batches=%d entries=%d pending=%d clean=%v\n",
		rep.BatchesChecked, rep.EntriesChecked, rep.PendingEntries, rep.Clean())

	fmt.Println("\nthird-party verification: membership proof for batch 2, entry 5")
	proof, root, err := hs.ProveEntry(2, 5)
	if err != nil {
		return err
	}
	raw, err := hs.EntryBytes(2, 5)
	if err != nil {
		return err
	}
	fmt.Printf("  entry: %s\n", raw)
	fmt.Printf("  proof verifies against on-chain root %s: %v\n", root.Short(), merkle.Verify(root, raw, proof))

	fmt.Println("\nattacker with database access rewrites an anchored entry...")
	hs.TamperLogEntry(1, 3, []byte("user-0 read NOTHING, honest!"))

	fmt.Println("audit #2 (after tampering):")
	rep = hs.Audit()
	fmt.Printf("  clean=%v\n", rep.Clean())
	for _, c := range rep.Corruptions {
		fmt.Printf("  corruption: batch=%d key=%q: %s\n", c.Batch, c.Key, c.Reason)
	}
	if rep.Clean() {
		return fmt.Errorf("tampering went undetected")
	}
	fmt.Println("\nthe same write against a plain database would have been silent —")
	fmt.Println("anchoring period bounds the unprotected window (paper §III trade-off)")
	return nil
}
