package experiment

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"drams/internal/blockchain"
	"drams/internal/contract"
	"drams/internal/crypto"
	"drams/internal/netsim"
)

// V6Params parameterise the cold-rejoin experiment: how long a freshly
// (re)started member needs to pull and validate an existing chain from a
// peer, per-block vs batched range sync.
type V6Params struct {
	// ChainLengths are the source chain heights measured.
	ChainLengths []int
	// SyncBatch is the bc.getrange window of the batched mode.
	SyncBatch int
	// NetLatency is the simulated one-way link latency; round-trips cost
	// 2× this, which is what the batched protocol amortises.
	NetLatency time.Duration
}

// DefaultV6Params sweeps rejoins over chains up to 1024 blocks on a 500µs
// link (loopback-datacenter territory).
func DefaultV6Params() V6Params {
	return V6Params{
		ChainLengths: []int{64, 256, 1024},
		SyncBatch:    128,
		NetLatency:   500 * time.Microsecond,
	}
}

// v6Chain fabricates a chain of the given length: one signed kv tx per
// block, mined at the configured difficulty and validated by AddBlock —
// the same bytes a live federation would have produced.
func v6Chain(cfg blockchain.Config, id *crypto.Identity, length int) (*blockchain.Chain, error) {
	c := blockchain.NewChain(cfg)
	parent, parentHeight := c.Head()
	genesis, _ := c.BlockByHash(parent)
	for i := 1; i <= length; i++ {
		args, err := json.Marshal(contract.KVArgs{Key: fmt.Sprintf("k%d", i), Value: []byte("v")})
		if err != nil {
			return nil, err
		}
		tx, err := blockchain.NewTransaction(id, uint64(i), contract.Call{Contract: "kv", Method: "put", Args: args})
		if err != nil {
			return nil, err
		}
		b := &blockchain.Block{
			Header: blockchain.BlockHeader{
				Height:       parentHeight + 1,
				PrevHash:     parent,
				MerkleRoot:   blockchain.ComputeMerkleRoot([]blockchain.Transaction{tx}),
				TimeUnixNano: genesis.Header.TimeUnixNano + int64(i)*int64(50*time.Millisecond),
				Difficulty:   c.NextDifficulty(),
				Miner:        "v6-source",
			},
			Txs: []blockchain.Transaction{tx},
		}
		if !blockchain.Mine(context.Background(), b, uint64(i)) {
			return nil, fmt.Errorf("V6: mining block %d failed", i)
		}
		if err := c.AddBlock(b); err != nil {
			return nil, fmt.Errorf("V6: apply block %d: %w", i, err)
		}
		parent, parentHeight = b.Hash(), b.Header.Height
	}
	return c, nil
}

// v6Rejoin builds a two-node universe — a source serving an existing chain
// of the given length and a cold joiner — and measures SyncFrom wall time
// plus the transport Calls it spent.
func v6Rejoin(p V6Params, length int, perBlock bool) (elapsed time.Duration, calls, blocks int64, err error) {
	writer := crypto.NewIdentityFromSeed("writer", crypto.SumAll([]byte("v6-writer")))
	reg := contract.NewRegistry()
	reg.MustRegister(&contract.KVContract{ContractName: "kv"})
	cfg := blockchain.Config{
		Difficulty: 4,
		Identities: []crypto.PublicIdentity{writer.Public()},
		Registry:   reg,
	}

	net := netsim.New(netsim.Config{BaseLatency: p.NetLatency, Seed: 66})
	defer net.Close()

	source, err := blockchain.NewNode(blockchain.NodeConfig{
		Name: "v6-source", Chain: cfg, Network: net,
		Peers: []string{"v6-source", "v6-joiner"},
	})
	if err != nil {
		return 0, 0, 0, err
	}
	defer source.Stop()
	chain, err := v6Chain(cfg, writer, length)
	if err != nil {
		return 0, 0, 0, err
	}
	// Feed the fabricated chain into the serving node (hashes are shared,
	// so one fabrication per length would also do; rebuilding keeps each
	// row independent).
	hashes := chain.BestChainHashes()
	for _, h := range hashes[1:] {
		b, _ := chain.BlockByHash(h)
		if err := source.Chain().AddBlock(b); err != nil {
			return 0, 0, 0, err
		}
	}

	joiner, err := blockchain.NewNode(blockchain.NodeConfig{
		Name: "v6-joiner", Chain: cfg, Network: net,
		Peers:        []string{"v6-source", "v6-joiner"},
		SyncBatch:    p.SyncBatch,
		PerBlockSync: perBlock,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	defer joiner.Stop()

	start := time.Now()
	if err := joiner.SyncFrom("v6-source"); err != nil {
		return 0, 0, 0, err
	}
	elapsed = time.Since(start)
	if joiner.Chain().Height() != uint64(length) {
		return 0, 0, 0, fmt.Errorf("V6: joiner at height %d, want %d", joiner.Chain().Height(), length)
	}
	if joiner.Chain().StateDigest() != source.Chain().StateDigest() {
		return 0, 0, 0, fmt.Errorf("V6: joiner state digest diverged after sync")
	}
	st := joiner.Stats()
	return elapsed, st.SyncCalls, st.SyncBlocks, nil
}

// RunV6 measures cold-rejoin time vs chain length for the per-block
// catch-up protocol (one Call per block — the pre-PR baseline) against
// batched bc.getrange sync. The crash-recovery path a restarted -data-dir
// member takes is this sync preceded by the local WAL replay, so the rows
// bound how long a member stays behind the fleet after a restart.
func RunV6(p V6Params) (Table, error) {
	t := Table{
		ID:     "V6",
		Title:  "cold rejoin: catch-up time vs chain length, per-block vs batched range sync",
		Header: []string{"chain_len", "mode", "sync_ms", "calls", "blocks", "blocks_per_s"},
		Notes: []string{
			fmt.Sprintf("simulated link latency %v each way; batched mode fetches %d blocks per bc.getrange call", p.NetLatency, p.SyncBatch),
			"every fetched block passes full validation (signatures via the TxVerifier pipeline, PoW, difficulty, nonces)",
			"per-block is the legacy protocol: one bc.getblock round-trip per block",
		},
	}
	for _, length := range p.ChainLengths {
		for _, perBlock := range []bool{true, false} {
			elapsed, calls, blocks, err := v6Rejoin(p, length, perBlock)
			if err != nil {
				return t, err
			}
			mode := fmt.Sprintf("batched(%d)", p.SyncBatch)
			if perBlock {
				mode = "per-block"
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", length),
				mode,
				fmt.Sprintf("%.1f", float64(elapsed.Microseconds())/1000),
				fmt.Sprintf("%d", calls),
				fmt.Sprintf("%d", blocks),
				rate(length, elapsed),
			})
		}
	}
	return t, nil
}
