package xacml

import (
	"testing"
)

// Convenience builders for tests.
func permitRule(id string, t Target, cond Expr) *Rule {
	return &Rule{ID: id, Effect: EffectPermit, Target: t, Condition: cond}
}
func denyRule(id string, t Target, cond Expr) *Rule {
	return &Rule{ID: id, Effect: EffectDeny, Target: t, Condition: cond}
}

func roleTarget(role string) Target {
	return TargetMatching(CatSubject, "role", String(role))
}

func roleReq(role string) *Request {
	return NewRequest("r").Add(CatSubject, "role", String(role))
}

// errTarget produces an Indeterminate target via MustBePresent on a missing
// attribute.
func errTarget() Target {
	return Target{AnyOf: []AnyOf{{AllOf: []AllOf{{Matches: []Match{{
		Op: CmpEq, Attr: Designator{Cat: CatSubject, ID: "ghost", MustBePresent: true}, Lit: String("x"),
	}}}}}}}
}

func TestRuleEvaluate(t *testing.T) {
	r := roleReq("doctor")
	cases := []struct {
		name string
		rule *Rule
		want Decision
	}{
		{"target match no cond permit", permitRule("a", roleTarget("doctor"), nil), Permit},
		{"target match no cond deny", denyRule("a", roleTarget("doctor"), nil), Deny},
		{"target no match", permitRule("a", roleTarget("nurse"), nil), NotApplicable},
		{"cond true", permitRule("a", Target{}, &ConstExpr{Val: true}), Permit},
		{"cond false", permitRule("a", Target{}, &ConstExpr{Val: false}), NotApplicable},
		{"cond error permit", permitRule("a", Target{},
			&CmpExpr{Op: CmpEq, Attr: Designator{Cat: CatSubject, ID: "ghost", MustBePresent: true}, Lit: Int(1)}),
			IndeterminateP},
		{"cond error deny", denyRule("a", Target{},
			&CmpExpr{Op: CmpEq, Attr: Designator{Cat: CatSubject, ID: "ghost", MustBePresent: true}, Lit: Int(1)}),
			IndeterminateD},
		{"target error permit", permitRule("a", errTarget(), nil), IndeterminateP},
		{"target error deny", denyRule("a", errTarget(), nil), IndeterminateD},
	}
	for _, c := range cases {
		if got := c.rule.Evaluate(r); got != c.want {
			t.Errorf("%s: got %s, want %s", c.name, got, c.want)
		}
	}
}

func policyWith(alg CombiningAlg, rules ...*Rule) *Policy {
	return &Policy{ID: "p", Version: "1", Alg: alg, Rules: rules}
}

func TestDenyOverridesTable(t *testing.T) {
	r := roleReq("doctor")
	pr := permitRule("p", Target{}, nil)
	dr := denyRule("d", Target{}, nil)
	na := permitRule("na", roleTarget("nobody"), nil)
	indP := permitRule("ip", errTarget(), nil)
	indD := denyRule("id", errTarget(), nil)

	cases := []struct {
		name  string
		rules []*Rule
		want  Decision
	}{
		{"deny wins over permit", []*Rule{pr, dr}, Deny},
		{"permit alone", []*Rule{pr, na}, Permit},
		{"all NA", []*Rule{na}, NotApplicable},
		{"empty", nil, NotApplicable},
		{"indetD alone", []*Rule{indD, na}, IndeterminateD},
		{"indetP alone", []*Rule{indP}, IndeterminateP},
		{"indetD + permit → indetDP", []*Rule{indD, pr}, IndeterminateDP},
		{"indetD + indetP → indetDP", []*Rule{indD, indP}, IndeterminateDP},
		{"deny dominates indeterminates", []*Rule{indD, indP, dr}, Deny},
		{"permit + indetP → permit", []*Rule{pr, indP}, Permit},
	}
	for _, c := range cases {
		if got := policyWith(DenyOverrides, c.rules...).Evaluate(r); got != c.want {
			t.Errorf("%s: got %s, want %s", c.name, got, c.want)
		}
	}
}

func TestPermitOverridesTable(t *testing.T) {
	r := roleReq("doctor")
	pr := permitRule("p", Target{}, nil)
	dr := denyRule("d", Target{}, nil)
	na := permitRule("na", roleTarget("nobody"), nil)
	indP := permitRule("ip", errTarget(), nil)
	indD := denyRule("id", errTarget(), nil)

	cases := []struct {
		name  string
		rules []*Rule
		want  Decision
	}{
		{"permit wins over deny", []*Rule{dr, pr}, Permit},
		{"deny alone", []*Rule{dr, na}, Deny},
		{"indetP + deny → indetDP", []*Rule{indP, dr}, IndeterminateDP},
		{"indetP alone", []*Rule{indP}, IndeterminateP},
		{"indetD alone", []*Rule{indD}, IndeterminateD},
		{"deny + indetD → deny", []*Rule{dr, indD}, Deny},
	}
	for _, c := range cases {
		if got := policyWith(PermitOverrides, c.rules...).Evaluate(r); got != c.want {
			t.Errorf("%s: got %s, want %s", c.name, got, c.want)
		}
	}
}

func TestFirstApplicable(t *testing.T) {
	r := roleReq("doctor")
	cases := []struct {
		name  string
		rules []*Rule
		want  Decision
	}{
		{"first match wins", []*Rule{
			permitRule("skip", roleTarget("nurse"), nil),
			denyRule("hit", roleTarget("doctor"), nil),
			permitRule("later", Target{}, nil),
		}, Deny},
		{"error stops", []*Rule{
			permitRule("err", errTarget(), nil),
			permitRule("later", Target{}, nil),
		}, IndeterminateDP},
		{"none applicable", []*Rule{permitRule("na", roleTarget("x"), nil)}, NotApplicable},
	}
	for _, c := range cases {
		if got := policyWith(FirstApplicable, c.rules...).Evaluate(r); got != c.want {
			t.Errorf("%s: got %s, want %s", c.name, got, c.want)
		}
	}
}

func TestDenyUnlessPermitAndDual(t *testing.T) {
	r := roleReq("doctor")
	na := permitRule("na", roleTarget("x"), nil)
	indP := permitRule("ip", errTarget(), nil)
	// deny-unless-permit never returns NA or Indeterminate.
	if got := policyWith(DenyUnlessPermit, na, indP).Evaluate(r); got != Deny {
		t.Fatalf("deny-unless-permit = %s", got)
	}
	if got := policyWith(DenyUnlessPermit, permitRule("p", Target{}, nil)).Evaluate(r); got != Permit {
		t.Fatalf("deny-unless-permit with permit = %s", got)
	}
	if got := policyWith(PermitUnlessDeny, na, indP).Evaluate(r); got != Permit {
		t.Fatalf("permit-unless-deny = %s", got)
	}
	if got := policyWith(PermitUnlessDeny, denyRule("d", Target{}, nil)).Evaluate(r); got != Deny {
		t.Fatalf("permit-unless-deny with deny = %s", got)
	}
}

func TestPolicyTargetGates(t *testing.T) {
	r := roleReq("doctor")
	p := policyWith(DenyOverrides, permitRule("p", Target{}, nil))
	p.Target = roleTarget("nurse")
	if got := p.Evaluate(r); got != NotApplicable {
		t.Fatalf("non-matching policy target: %s", got)
	}
	// Indeterminate target downgrades a Permit outcome to IndeterminateP.
	p.Target = errTarget()
	if got := p.Evaluate(r); got != IndeterminateP {
		t.Fatalf("indeterminate policy target: %s", got)
	}
	// ... and NA stays NA.
	p2 := policyWith(DenyOverrides, permitRule("na", roleTarget("x"), nil))
	p2.Target = errTarget()
	if got := p2.Evaluate(r); got != NotApplicable {
		t.Fatalf("indeterminate target over NA: %s", got)
	}
}

func TestPolicySetEvaluation(t *testing.T) {
	r := roleReq("doctor")
	permitP := policyWith(DenyOverrides, permitRule("p", Target{}, nil))
	denyP := policyWith(DenyOverrides, denyRule("d", Target{}, nil))
	ps := &PolicySet{ID: "s", Version: "1", Alg: DenyOverrides,
		Items: []PolicyItem{{Policy: permitP}, {Policy: denyP}}}
	if got := ps.Evaluate(r); got != Deny {
		t.Fatalf("set deny-overrides = %s", got)
	}
	ps.Alg = PermitOverrides
	if got := ps.Evaluate(r); got != Permit {
		t.Fatalf("set permit-overrides = %s", got)
	}
}

func TestNestedPolicySets(t *testing.T) {
	r := roleReq("doctor")
	inner := &PolicySet{ID: "inner", Version: "1", Alg: DenyUnlessPermit,
		Items: []PolicyItem{{Policy: policyWith(FirstApplicable, permitRule("p", roleTarget("doctor"), nil))}}}
	outer := &PolicySet{ID: "outer", Version: "1", Alg: FirstApplicable,
		Items: []PolicyItem{{Set: inner}}}
	if got := outer.Evaluate(r); got != Permit {
		t.Fatalf("nested = %s", got)
	}
}

func TestOnlyOneApplicable(t *testing.T) {
	r := roleReq("doctor")
	docP := policyWith(FirstApplicable, permitRule("p", Target{}, nil))
	docP.Target = roleTarget("doctor")
	nurseP := policyWith(FirstApplicable, denyRule("d", Target{}, nil))
	nurseP.Target = roleTarget("nurse")

	ps := &PolicySet{ID: "s", Version: "1", Alg: OnlyOneApplicable,
		Items: []PolicyItem{{Policy: docP}, {Policy: nurseP}}}
	if got := ps.Evaluate(r); got != Permit {
		t.Fatalf("one applicable = %s", got)
	}
	// Two applicable → IndeterminateDP.
	nurseP.Target = roleTarget("doctor")
	if got := ps.Evaluate(r); got != IndeterminateDP {
		t.Fatalf("two applicable = %s", got)
	}
	// None applicable → NotApplicable.
	docP.Target = roleTarget("x")
	nurseP.Target = roleTarget("y")
	if got := ps.Evaluate(r); got != NotApplicable {
		t.Fatalf("none applicable = %s", got)
	}
	// Target error → IndeterminateDP.
	docP.Target = errTarget()
	if got := ps.Evaluate(r); got != IndeterminateDP {
		t.Fatalf("error target = %s", got)
	}
}

func TestTargetSemantics(t *testing.T) {
	r := NewRequest("t").
		Add(CatSubject, "role", String("doctor")).
		Add(CatResource, "type", String("record"))
	m := func(cat Category, id AttributeID, v Value) Match {
		return Match{Op: CmpEq, Attr: Designator{Cat: cat, ID: id}, Lit: v}
	}
	// AllOf = AND.
	all := AllOf{Matches: []Match{m(CatSubject, "role", String("doctor")), m(CatResource, "type", String("record"))}}
	if all.Evaluate(r) != MatchYes {
		t.Fatal("AllOf AND failed")
	}
	allMiss := AllOf{Matches: []Match{m(CatSubject, "role", String("doctor")), m(CatResource, "type", String("scan"))}}
	if allMiss.Evaluate(r) != MatchNo {
		t.Fatal("AllOf with one miss should be NoMatch")
	}
	// AnyOf = OR.
	any := AnyOf{AllOf: []AllOf{allMiss, all}}
	if any.Evaluate(r) != MatchYes {
		t.Fatal("AnyOf OR failed")
	}
	// Empty target matches all.
	if (Target{}).Evaluate(r) != MatchYes {
		t.Fatal("empty target should match")
	}
	// Indeterminate propagation: NoMatch dominates Indeterminate in AllOf.
	errM := Match{Op: CmpEq, Attr: Designator{Cat: CatSubject, ID: "ghost", MustBePresent: true}, Lit: String("x")}
	allErrAndMiss := AllOf{Matches: []Match{errM, m(CatSubject, "role", String("other"))}}
	if got := allErrAndMiss.Evaluate(r); got != MatchNo {
		t.Fatalf("AllOf(err, miss) = %s, want NoMatch", got)
	}
	allErrAndHit := AllOf{Matches: []Match{errM, m(CatSubject, "role", String("doctor"))}}
	if got := allErrAndHit.Evaluate(r); got != MatchIndeterminate {
		t.Fatalf("AllOf(err, hit) = %s, want Indeterminate", got)
	}
	// Match dominates Indeterminate in AnyOf.
	anyErrOrHit := AnyOf{AllOf: []AllOf{allErrAndHit, all}}
	if got := anyErrOrHit.Evaluate(r); got != MatchYes {
		t.Fatalf("AnyOf(indet, match) = %s, want Match", got)
	}
}

func TestObligationsCollected(t *testing.T) {
	r := roleReq("doctor")
	ru := permitRule("p", Target{}, nil)
	ru.Obligs = []Obligation{{ID: "log-access", FulfillOn: EffectPermit}}
	pol := policyWith(DenyOverrides, ru)
	pol.Obligs = []Obligation{
		{ID: "notify-owner", FulfillOn: EffectPermit},
		{ID: "alert-denied", FulfillOn: EffectDeny},
	}
	ps := &PolicySet{ID: "s", Version: "1", Alg: DenyOverrides, Items: []PolicyItem{{Policy: pol}},
		Obligs: []Obligation{{ID: "audit", FulfillOn: EffectPermit}}}
	obls := ps.CollectObligations(r, ps.Evaluate(r).Simple())
	ids := map[string]bool{}
	for _, o := range obls {
		ids[o.ID] = true
	}
	if !ids["log-access"] || !ids["notify-owner"] || !ids["audit"] {
		t.Fatalf("obligations = %v", obls)
	}
	if ids["alert-denied"] {
		t.Fatal("deny obligation collected on permit")
	}
	// No obligations for NA decisions.
	if got := ps.CollectObligations(r, NotApplicable); got != nil {
		t.Fatalf("NA obligations = %v", got)
	}
}

func TestPolicySetJSONRoundTripPreservesDecisions(t *testing.T) {
	gen := NewGenerator(11, DefaultGenParams())
	ps := gen.PolicySet("root", "v1")
	data := ps.Encode()
	back, err := DecodePolicySet(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Digest() != ps.Digest() {
		t.Fatal("round trip changed digest")
	}
	for i := 0; i < 200; i++ {
		r := gen.Request("r")
		if ps.Evaluate(r) != back.Evaluate(r) {
			t.Fatalf("decision diverged after round trip on request %d", i)
		}
	}
}

func TestDigestSensitivity(t *testing.T) {
	gen := NewGenerator(12, DefaultGenParams())
	ps := gen.PolicySet("root", "v1")
	d1 := ps.Digest()
	mutated := ps.Clone()
	mutated.Items[0].Policy.Rules[0].Effect = EffectDeny
	if mutated.Items[0].Policy.Rules[0].Effect == ps.Items[0].Policy.Rules[0].Effect {
		mutated.Items[0].Policy.Rules[0].Effect = EffectPermit
	}
	if mutated.Digest() == d1 {
		t.Fatal("rule effect flip did not change digest")
	}
	v2 := ps.Clone()
	v2.Version = "v2"
	if v2.Digest() == d1 {
		t.Fatal("version change did not change digest")
	}
}

func TestDecisionHelpers(t *testing.T) {
	if Permit.Simple() != Permit || Deny.Simple() != Deny || NotApplicable.Simple() != NotApplicable {
		t.Fatal("Simple changed determinate decisions")
	}
	for _, d := range []Decision{IndeterminateP, IndeterminateD, IndeterminateDP} {
		if !d.IsIndeterminate() || d.Simple() != IndeterminateDP {
			t.Fatalf("indeterminate helpers wrong for %s", d)
		}
	}
	if Permit.IsIndeterminate() {
		t.Fatal("Permit is not indeterminate")
	}
}

// Property: deny-overrides and permit-overrides are order-independent.
func TestOverridesOrderIndependenceProperty(t *testing.T) {
	gen := NewGenerator(77, DefaultGenParams())
	for trial := 0; trial < 40; trial++ {
		p := gen.Policy("p")
		p.Alg = DenyOverrides
		if trial%2 == 0 {
			p.Alg = PermitOverrides
		}
		rev := &Policy{ID: p.ID, Version: p.Version, Target: p.Target, Alg: p.Alg}
		for i := len(p.Rules) - 1; i >= 0; i-- {
			rev.Rules = append(rev.Rules, p.Rules[i])
		}
		for i := 0; i < 30; i++ {
			r := gen.Request("r")
			if p.Evaluate(r) != rev.Evaluate(r) {
				t.Fatalf("%s order dependence: %s vs %s", p.Alg, p.Evaluate(r), rev.Evaluate(r))
			}
		}
	}
}

// Property: deny-unless-permit and permit-unless-deny are always
// determinate.
func TestUnlessAlgsAlwaysDeterminateProperty(t *testing.T) {
	params := DefaultGenParams()
	params.MustBePresentRate = 0.5 // force lots of Indeterminates
	gen := NewGenerator(78, params)
	for trial := 0; trial < 40; trial++ {
		p := gen.Policy("p")
		p.Target = Target{}
		p.Alg = DenyUnlessPermit
		q := &Policy{ID: "q", Version: "1", Alg: PermitUnlessDeny, Rules: p.Rules}
		for i := 0; i < 30; i++ {
			r := gen.Request("r")
			for _, d := range []Decision{p.Evaluate(r), q.Evaluate(r)} {
				if d != Permit && d != Deny {
					t.Fatalf("unless-alg returned %s", d)
				}
			}
		}
	}
}
