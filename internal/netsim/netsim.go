// Package netsim simulates the federation network connecting tenants, clouds
// and monitoring components. All DRAMS traffic — PEP→PDP access requests,
// agent→LI log submissions, LI→blockchain transactions and block gossip —
// flows through a Network, which can inject latency, jitter, message loss,
// link faults, crashes and partitions. This is the substitution for a real
// multi-datacenter deployment: goroutine-per-node on one box with explicit,
// controllable asynchrony (DESIGN.md §4).
//
// Network is the in-process implementation of transport.Transport; the
// fault-injection surface (Partition, Heal, SetLinkFault, Synchronous mode)
// stays netsim-specific, behind the shared interface. The multi-process
// counterpart is transport/tcp.
//
// Two delivery modes are supported:
//
//   - Asynchronous (default): each message is delivered on its own goroutine
//     after the sampled latency, exercising real concurrency.
//   - Synchronous: messages are delivered inline on the sender's goroutine
//     with zero latency, giving deterministic unit tests.
//
// # Reproducibility contract
//
// All randomness a Network consumes — latency and jitter sampling, drop
// decisions, link-fault dice — is drawn from a single PRNG seeded by
// Config.Seed. Two networks built with the same Config therefore make the
// same per-message decisions when offered the same message sequence. Tests
// that inject faults or adversarial behaviour (internal/attack, the chaos
// campaign, partition drills) MUST pin an explicit Seed so that failures
// replay: goroutine scheduling still varies between runs, but the network
// itself never adds unseeded nondeterminism. Seed 0 is a valid pin (it is
// a fixed default stream, not a time-derived one).
package netsim

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"drams/internal/clock"
	"drams/internal/idgen"
	"drams/internal/metrics"
	"drams/internal/transport"
)

// Sentinel errors, shared across transport backends (see package transport).
var (
	// ErrUnknownAddress is returned when sending to an unregistered address.
	ErrUnknownAddress = transport.ErrUnknownAddress
	// ErrAddressInUse is returned when registering a duplicate address.
	ErrAddressInUse = transport.ErrAddressInUse
	// ErrDropped is returned to callers when the network dropped the request
	// or the reply (Call only; one-way sends are dropped silently, as on a
	// real network).
	ErrDropped = transport.ErrDropped
	// ErrNoHandler is returned when the peer has no handler for a call kind.
	ErrNoHandler = transport.ErrNoHandler
	// ErrCrashed is returned when the destination endpoint is crashed.
	ErrCrashed = transport.ErrCrashed
	// ErrNetworkClosed is returned after Network.Close.
	ErrNetworkClosed = transport.ErrClosed
)

// Message is the unit of delivery.
type Message = transport.Message

// envelope is a Message plus the private wire fields of the simulator's
// request/response machinery.
type envelope struct {
	Message
	corrID  uint64
	isReply bool
	callErr string
}

// Config controls network behaviour.
type Config struct {
	// BaseLatency is the minimum one-way delivery delay.
	BaseLatency time.Duration
	// Jitter adds a uniform random extra delay in [0, Jitter).
	Jitter time.Duration
	// DropRate is the probability in [0,1] that any one-way delivery is lost.
	DropRate float64
	// Seed makes latency and drop sampling reproducible (see the package
	// doc's reproducibility contract). Fault-injection and attack tests
	// must set it explicitly.
	Seed uint64
	// Clock is the time source; defaults to the system clock.
	Clock clock.Clock
	// Synchronous delivers messages inline with zero latency.
	Synchronous bool
}

// Stats aggregates network-level counters.
type Stats = transport.Stats

// Network routes messages between registered endpoints. It implements
// transport.Transport.
type Network struct {
	cfg   Config
	clk   clock.Clock
	rng   *idgen.Rand
	corr  atomic.Uint64
	wg    sync.WaitGroup
	state struct {
		sync.Mutex
		endpoints map[string]*Endpoint
		groups    map[string]int // partition group per address; absent = 0
		links     map[string]linkFault
		closed    bool
	}
	sent      metrics.Counter
	delivered metrics.Counter
	dropped   metrics.Counter
	bytes     metrics.Counter
}

var _ transport.Transport = (*Network)(nil)

type linkFault struct {
	dropRate     float64
	extraLatency time.Duration
}

// New constructs a Network.
func New(cfg Config) *Network {
	if cfg.Clock == nil {
		cfg.Clock = clock.System{}
	}
	n := &Network{cfg: cfg, clk: cfg.Clock, rng: idgen.NewRand(cfg.Seed)}
	n.state.endpoints = make(map[string]*Endpoint)
	n.state.groups = make(map[string]int)
	n.state.links = make(map[string]linkFault)
	return n
}

// Stats returns a snapshot of the traffic counters.
func (n *Network) Stats() Stats {
	return Stats{
		Sent:      n.sent.Value(),
		Delivered: n.delivered.Value(),
		Dropped:   n.dropped.Value(),
		Bytes:     n.bytes.Value(),
	}
}

// Register creates an endpoint bound to addr.
func (n *Network) Register(addr string) (transport.Endpoint, error) {
	n.state.Lock()
	defer n.state.Unlock()
	if n.state.closed {
		return nil, ErrNetworkClosed
	}
	if _, ok := n.state.endpoints[addr]; ok {
		return nil, fmt.Errorf("netsim: register %q: %w", addr, ErrAddressInUse)
	}
	ep := &Endpoint{
		net:      n,
		addr:     addr,
		msgH:     make(map[string]func(from string, payload []byte)),
		callH:    make(map[string]func(from string, payload []byte) ([]byte, error)),
		pending:  make(map[uint64]chan envelope),
		defaultH: nil,
	}
	n.state.endpoints[addr] = ep
	return ep, nil
}

// Unregister removes addr from the network.
func (n *Network) Unregister(addr string) {
	n.state.Lock()
	defer n.state.Unlock()
	delete(n.state.endpoints, addr)
	delete(n.state.groups, addr)
}

// Addresses lists registered endpoint addresses.
func (n *Network) Addresses() []string {
	n.state.Lock()
	defer n.state.Unlock()
	out := make([]string, 0, len(n.state.endpoints))
	for a := range n.state.endpoints {
		out = append(out, a)
	}
	return out
}

// Partition splits the network: each group's addresses can talk to each
// other but not across groups. Addresses not mentioned stay in group 0.
func (n *Network) Partition(groups ...[]string) {
	n.state.Lock()
	defer n.state.Unlock()
	n.state.groups = make(map[string]int)
	for gi, group := range groups {
		for _, a := range group {
			n.state.groups[a] = gi + 1
		}
	}
}

// Heal removes all partitions.
func (n *Network) Heal() {
	n.state.Lock()
	defer n.state.Unlock()
	n.state.groups = make(map[string]int)
}

// SetLinkFault configures per-link loss and extra latency for traffic in
// either direction between a and b.
func (n *Network) SetLinkFault(a, b string, dropRate float64, extraLatency time.Duration) {
	n.state.Lock()
	defer n.state.Unlock()
	n.state.links[linkKey(a, b)] = linkFault{dropRate: dropRate, extraLatency: extraLatency}
}

// ClearLinkFault removes any fault on the a–b link.
func (n *Network) ClearLinkFault(a, b string) {
	n.state.Lock()
	defer n.state.Unlock()
	delete(n.state.links, linkKey(a, b))
}

func linkKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}

// Close shuts the network down and waits for in-flight deliveries.
func (n *Network) Close() error {
	n.state.Lock()
	n.state.closed = true
	n.state.Unlock()
	n.wg.Wait()
	return nil
}

// route decides whether a message may travel from src to dst and with what
// latency; it does not deliver.
func (n *Network) route(src, dst string, size int) (latency time.Duration, drop bool, err error) {
	n.state.Lock()
	if n.state.closed {
		n.state.Unlock()
		return 0, false, ErrNetworkClosed
	}
	_, ok := n.state.endpoints[dst]
	gs, gd := n.state.groups[src], n.state.groups[dst]
	fault, hasFault := n.state.links[linkKey(src, dst)]
	n.state.Unlock()

	if !ok {
		return 0, false, fmt.Errorf("netsim: route to %q: %w", dst, ErrUnknownAddress)
	}
	if gs != gd {
		// Partitioned: behaves as silent loss, like a real partition.
		return 0, true, nil
	}
	dropRate := n.cfg.DropRate
	extra := time.Duration(0)
	if hasFault {
		dropRate = 1 - (1-dropRate)*(1-fault.dropRate)
		extra = fault.extraLatency
	}
	if dropRate > 0 && n.rng.Float64() < dropRate {
		return 0, true, nil
	}
	latency = n.cfg.BaseLatency + extra
	if n.cfg.Jitter > 0 {
		latency += time.Duration(n.rng.Uint64() % uint64(n.cfg.Jitter))
	}
	_ = size
	return latency, false, nil
}

// deliver performs the actual handoff to the destination endpoint.
func (n *Network) deliver(msg envelope) {
	n.state.Lock()
	ep, ok := n.state.endpoints[msg.To]
	n.state.Unlock()
	if !ok {
		n.dropped.Inc()
		return
	}
	if ep.isCrashed() {
		n.dropped.Inc()
		return
	}
	n.delivered.Inc()
	ep.dispatch(msg)
}

// send schedules a message for delivery, respecting faults and latency.
func (n *Network) send(msg envelope) error {
	n.sent.Inc()
	n.bytes.Add(int64(len(msg.Payload)))
	latency, drop, err := n.route(msg.From, msg.To, len(msg.Payload))
	if err != nil {
		return err
	}
	if drop {
		n.dropped.Inc()
		return nil
	}
	if n.cfg.Synchronous {
		n.deliver(msg)
		return nil
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		if latency > 0 {
			n.clk.Sleep(latency)
		}
		n.deliver(msg)
	}()
	return nil
}

// Endpoint is one addressable participant. It implements transport.Endpoint.
type Endpoint struct {
	net     *Network
	addr    string
	crashed atomic.Bool

	mu       sync.RWMutex
	msgH     map[string]func(from string, payload []byte)
	callH    map[string]func(from string, payload []byte) ([]byte, error)
	defaultH func(msg Message)
	pending  map[uint64]chan envelope
}

var _ transport.Endpoint = (*Endpoint)(nil)

// Addr returns the endpoint's address.
func (e *Endpoint) Addr() string { return e.addr }

// OnMessage registers a handler for one-way messages of the given kind.
func (e *Endpoint) OnMessage(kind string, fn func(from string, payload []byte)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.msgH[kind] = fn
}

// OnCall registers a request handler for the given kind.
func (e *Endpoint) OnCall(kind string, fn func(from string, payload []byte) ([]byte, error)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.callH[kind] = fn
}

// OnDefault registers a catch-all handler invoked for one-way messages with
// no kind-specific handler.
func (e *Endpoint) OnDefault(fn func(msg Message)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.defaultH = fn
}

// Crash makes the endpoint drop all traffic until Restart.
func (e *Endpoint) Crash() { e.crashed.Store(true) }

// Restart brings a crashed endpoint back.
func (e *Endpoint) Restart() { e.crashed.Store(false) }

func (e *Endpoint) isCrashed() bool { return e.crashed.Load() }

// Send transmits a one-way message. Loss is silent by design.
func (e *Endpoint) Send(to, kind string, payload []byte) error {
	if e.isCrashed() {
		return ErrCrashed
	}
	return e.net.send(envelope{Message: Message{From: e.addr, To: to, Kind: kind, Payload: payload}})
}

// Broadcast sends the message to every registered address except the sender
// and any listed exclusions.
func (e *Endpoint) Broadcast(kind string, payload []byte, except ...string) {
	skip := make(map[string]bool, len(except)+1)
	skip[e.addr] = true
	for _, a := range except {
		skip[a] = true
	}
	for _, a := range e.net.Addresses() {
		if skip[a] {
			continue
		}
		// Best effort: unregistered races and closed network are non-fatal
		// for gossip.
		_ = e.Send(a, kind, payload)
	}
}

// Call sends a request and waits for the reply or ctx cancellation.
func (e *Endpoint) Call(ctx context.Context, to, kind string, payload []byte) ([]byte, error) {
	if e.isCrashed() {
		return nil, ErrCrashed
	}
	corr := e.net.corr.Add(1)
	ch := make(chan envelope, 1)
	e.mu.Lock()
	e.pending[corr] = ch
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		delete(e.pending, corr)
		e.mu.Unlock()
	}()

	msg := envelope{Message: Message{From: e.addr, To: to, Kind: kind, Payload: payload}, corrID: corr}
	if err := e.net.send(msg); err != nil {
		return nil, err
	}
	select {
	case reply := <-ch:
		if reply.callErr != "" {
			return nil, transport.RemoteError(reply.callErr)
		}
		return reply.Payload, nil
	case <-ctx.Done():
		return nil, fmt.Errorf("netsim: call %s/%s: %w", to, kind, ctx.Err())
	}
}

// dispatch runs on the delivery goroutine.
func (e *Endpoint) dispatch(msg envelope) {
	if msg.isReply {
		e.mu.RLock()
		ch, ok := e.pending[msg.corrID]
		e.mu.RUnlock()
		if ok {
			select {
			case ch <- msg:
			default:
			}
		}
		return
	}
	if msg.corrID != 0 {
		// Request/response call.
		e.mu.RLock()
		fn, ok := e.callH[msg.Kind]
		e.mu.RUnlock()
		reply := envelope{
			Message: Message{From: e.addr, To: msg.From, Kind: msg.Kind},
			corrID:  msg.corrID, isReply: true,
		}
		if !ok {
			reply.callErr = ErrNoHandler.Error()
		} else {
			out, err := fn(msg.From, msg.Payload)
			if err != nil {
				reply.callErr = err.Error()
			} else {
				reply.Payload = out
			}
		}
		// Replies travel the same faulty network.
		_ = e.net.send(reply)
		return
	}
	e.mu.RLock()
	fn, ok := e.msgH[msg.Kind]
	def := e.defaultH
	e.mu.RUnlock()
	if ok {
		fn(msg.From, msg.Payload)
		return
	}
	if def != nil {
		def(msg.Message)
	}
}
