// drams-node runs a local multi-node DRAMS blockchain cluster and verifies
// replication invariants live: it mines to a target height under injected
// network latency, exercises a partition/heal cycle, and checks that every
// node converges to the same state digest. Useful for exploring the chain
// substrate in isolation from the access-control plane.
//
// Usage:
//
//	drams-node [-nodes 3] [-difficulty 10] [-height 30] [-latency 2ms]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"drams/internal/blockchain"
	"drams/internal/contract"
	"drams/internal/core"
	"drams/internal/crypto"
	"drams/internal/netsim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "drams-node:", err)
		os.Exit(1)
	}
}

func run() error {
	nodes := flag.Int("nodes", 3, "cluster size")
	difficulty := flag.Int("difficulty", 10, "PoW difficulty (leading zero bits)")
	height := flag.Uint64("height", 30, "target chain height")
	latency := flag.Duration("latency", 2*time.Millisecond, "simulated network latency")
	flag.Parse()

	var seed [32]byte
	seed[0] = 1
	writer := crypto.NewIdentityFromSeed("writer", seed)

	registry := contract.NewRegistry()
	registry.MustRegister(core.NewLogMatchContract(core.MatchConfig{TimeoutBlocks: 1 << 20}))
	registry.MustRegister(&contract.KVContract{ContractName: "kv"})
	registry.MustRegister(&contract.AnchorContract{ContractName: "anchor"})

	net := netsim.New(netsim.Config{BaseLatency: *latency, Jitter: *latency, Seed: 11})
	defer net.Close()

	chainCfg := blockchain.Config{
		Difficulty: uint8(*difficulty),
		Identities: []crypto.PublicIdentity{writer.Public()},
		Registry:   registry,
	}
	var cluster []*blockchain.Node
	var names []string
	for i := 0; i < *nodes; i++ {
		names = append(names, fmt.Sprintf("node-%d", i))
	}
	for i := 0; i < *nodes; i++ {
		n, err := blockchain.NewNode(blockchain.NodeConfig{
			Name:               names[i],
			Chain:              chainCfg,
			Network:            net,
			Peers:              names,
			Mine:               i == 0, // designated producer
			EmptyBlockInterval: 20 * time.Millisecond,
		})
		if err != nil {
			return err
		}
		defer n.Stop()
		cluster = append(cluster, n)
		n.Start()
	}
	fmt.Printf("cluster of %d nodes, difficulty %d bits, producer node-0\n", *nodes, *difficulty)

	// Feed a stream of kv transactions while the chain grows.
	sender := blockchain.NewSender(cluster[0], writer)
	go func() {
		for i := 0; ; i++ {
			raw, err := json.Marshal(contract.KVArgs{Key: fmt.Sprintf("k%d", i), Value: []byte("v")})
			if err != nil {
				return
			}
			if _, err := sender.Send(contract.Call{Contract: "kv", Method: "put", Args: raw}); err != nil {
				return
			}
			time.Sleep(25 * time.Millisecond)
		}
	}()

	waitHeight := func(h uint64, timeout time.Duration) error {
		deadline := time.Now().Add(timeout)
		for time.Now().Before(deadline) {
			if cluster[0].Chain().Height() >= h {
				return nil
			}
			time.Sleep(10 * time.Millisecond)
		}
		return fmt.Errorf("timeout waiting for height %d (at %d)", h, cluster[0].Chain().Height())
	}

	if err := waitHeight(*height/2, 2*time.Minute); err != nil {
		return err
	}
	fmt.Printf("reached height %d — injecting partition {node-0} | {rest}\n", cluster[0].Chain().Height())
	rest := names[1:]
	net.Partition(names[:1], rest)
	time.Sleep(500 * time.Millisecond)
	fmt.Println("healing partition")
	net.Heal()
	for _, n := range cluster[1:] {
		if err := n.SyncFrom(names[0]); err != nil {
			fmt.Printf("  %s sync: %v\n", n.Name(), err)
		}
	}

	if err := waitHeight(*height, 5*time.Minute); err != nil {
		return err
	}

	// Convergence check.
	deadline := time.Now().Add(time.Minute)
	for {
		base := cluster[0].Chain().StateDigest()
		ok := true
		for _, n := range cluster[1:] {
			if n.Chain().StateDigest() != base {
				ok = false
				break
			}
		}
		if ok {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("nodes did not converge")
		}
		time.Sleep(20 * time.Millisecond)
	}

	fmt.Println()
	fmt.Printf("%-8s %-8s %-10s %-10s %s\n", "node", "height", "mined", "accepted", "state-digest")
	for _, n := range cluster {
		st := n.Stats()
		fmt.Printf("%-8s %-8d %-10d %-10d %s\n",
			n.Name(), n.Chain().Height(), st.BlocksMined, st.BlocksAccepted,
			n.Chain().StateDigest().Short())
	}
	ns := net.Stats()
	fmt.Printf("\nnetwork: sent=%d delivered=%d dropped=%d bytes=%d\n", ns.Sent, ns.Delivered, ns.Dropped, ns.Bytes)
	fmt.Println("cluster converged ✓")
	return nil
}
