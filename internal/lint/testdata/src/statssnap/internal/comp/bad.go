// Package comp exercises the statssnap analyzer.
package comp

import "sync"

// Server guards its counters with a mutex.
type Server struct {
	mu     sync.Mutex
	counts map[string]int
	events []string
}

// Snapshot is the exported stats view.
type Snapshot struct {
	Counts map[string]int
	Events []string
}

// Stats leaks the live guarded containers.
func (s *Server) Stats() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Snapshot{
		Counts: s.counts, // want "retains a reference to guarded s.counts"
		Events: s.events, // want "retains a reference to guarded s.events"
	}
}
