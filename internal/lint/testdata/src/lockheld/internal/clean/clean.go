// Package clean is the zero-finding twin for lockheld: snapshot under the
// lock, block after release.
package clean

import (
	"io"
	"sync"

	"fix/internal/transport"
)

// Broker snapshots state before any blocking operation.
type Broker struct {
	mu    sync.Mutex
	peer  transport.Endpoint
	sink  io.Writer
	queue chan []byte
	last  []byte
}

// Publish snapshots under the lock and performs blocking work after release.
func (b *Broker) Publish(payload []byte) error {
	b.mu.Lock()
	b.last = payload
	snapshot := b.last
	b.mu.Unlock()
	b.queue <- snapshot
	_, err := b.peer.Call("publish", snapshot)
	return err
}

// TryNotify uses the drop-not-block fanout idiom: a select with a default
// clause never blocks, so the send is safe even under the lock.
func (b *Broker) TryNotify(payload []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	select {
	case b.queue <- payload:
	default:
	}
}

// Dump copies the buffer out, unlocks, then serves the copy.
func (b *Broker) Dump() {
	b.mu.Lock()
	snapshot := append([]byte(nil), b.last...)
	b.mu.Unlock()
	b.sink.Write(snapshot)
}
