package attack

import (
	"context"
	"fmt"
	"time"

	"drams"
	"drams/internal/blockchain"
	"drams/internal/core"
	"drams/internal/crypto"
	"drams/internal/federation"
	"drams/internal/metrics"
	"drams/internal/netsim"
	"drams/internal/transport"
	"drams/internal/xacml"
)

// Attack classes of the chaos catalogue. Each maps to the monitor check
// that must catch it (ARCHITECTURE §9).
const (
	ClassWithholding  = "withholding"
	ClassEquivocation = "equivocation"
	ClassCensorship   = "censorship"
	ClassOrdering     = "ordering"
	ClassSuppression  = "suppression"
)

// NetFault is one scheduled network event of a campaign: a point on the
// chaos timeline, relative to each trial's injection instant.
type NetFault struct {
	// At is the offset from the injection at which the fault applies.
	At time.Duration
	// Partition, when non-nil, splits the simulator into the given groups
	// (netsim semantics: unlisted addresses form group 0; cross-group
	// traffic is dropped silently).
	Partition [][]string
	// Heal clears every partition and link fault.
	Heal bool
	// LinkA/LinkB select a directed link for a drop/latency fault.
	LinkA, LinkB string
	// DropRate / ExtraLatency configure the link fault.
	DropRate     float64
	ExtraLatency time.Duration
}

// ApplyNetFaults replays a fault schedule against net, blocking until the
// last fault fired or stop closes. Faults must be ordered by At. Run it on
// its own goroutine to overlap with an attack in flight.
func ApplyNetFaults(net *netsim.Network, faults []NetFault, stop <-chan struct{}) {
	start := time.Now()
	for _, f := range faults {
		wait := f.At - time.Since(start)
		if wait > 0 {
			select {
			case <-stop:
				return
			case <-time.After(wait):
			}
		}
		select {
		case <-stop:
			return
		default:
		}
		switch {
		case f.Heal:
			net.Heal()
		case f.Partition != nil:
			net.Partition(f.Partition...)
		case f.LinkA != "" && f.LinkB != "":
			net.SetLinkFault(f.LinkA, f.LinkB, f.DropRate, f.ExtraLatency)
		}
	}
}

// ChaosInjection describes one injected attack instance: what to watch for
// detection and how to undo the attack.
type ChaosInjection struct {
	// VictimReqID is the request whose detection latency is measured.
	VictimReqID string
	// ReqIDs lists every request the attack legitimately disturbs; alerts
	// on any other request (or of an unexpected type) count as false
	// positives.
	ReqIDs []string
	// At and Height timestamp the injection (wall clock; chain height as
	// the monitor's node saw it).
	At     time.Time
	Height uint64
	// Cleanup removes the attack (nil when nothing is left installed).
	Cleanup func()
}

// ChaosHarness hands a scenario the handles it needs on a live deployment.
type ChaosHarness struct {
	// Dep is the federation under attack.
	Dep *drams.Deployment
	// Seed is the deployment seed (identities are re-derivable from it —
	// a Byzantine member knows its own keys).
	Seed uint64
	// Victim is the tenant whose requests the attack targets.
	Victim string
	// Byz wraps the Byzantine member's chain node.
	Byz *ByzantineNode
	// ByzTenant is the tenant hosted on the Byzantine member's cloud; its
	// LI identity is the member's own signing material.
	ByzTenant string
	// Adversary is a raw transport endpoint for targeted block/tx
	// delivery, registered outside the chain peer set.
	Adversary transport.Endpoint
}

// LIIdentity re-derives a tenant's Logging Interface identity from the
// federation seed — the key material a Byzantine member legitimately holds
// for its own hosted tenants.
func (h *ChaosHarness) LIIdentity(tenant string) *crypto.Identity {
	return crypto.NewIdentityFromSeed("li@"+tenant, federation.IdentitySeed(h.Seed, "li@"+tenant))
}

// NodeNames lists every chain node address of the deployment, in topology
// order.
func (h *ChaosHarness) NodeNames() []string {
	var names []string
	for _, c := range h.Dep.Topology().Clouds {
		names = append(names, "node@"+c.Name)
	}
	return names
}

// ChaosScenario is one Byzantine-member / network-chaos attack the campaign
// runner can drive against a fresh federation.
type ChaosScenario struct {
	// Class is the attack class (ClassWithholding, ...).
	Class string
	// Name is a short label.
	Name string
	// Description explains the attack in operator terms.
	Description string
	// Expected lists the alert types that count as detection (any one
	// suffices).
	Expected []core.AlertType
	// MineAll selects the chain production mode the scenario needs: true
	// lets every member mine (withholding needs the Byzantine member to
	// genuinely produce blocks it then suppresses).
	MineAll bool
	// ByzProducer puts the Byzantine wrapper on the designated block
	// producer (censorship and anchoring delay need mining control).
	ByzProducer bool
	// VictimOnByzCloud co-locates the victim tenant with the Byzantine
	// node (withholding traps the victim's records on the member's node).
	VictimOnByzCloud bool
	// Run injects the attack once and reports what was injected.
	Run func(ctx context.Context, h *ChaosHarness) (*ChaosInjection, error)
}

// ChaosPolicy is the access policy chaos scenarios run under: doctors may
// read records, everyone else is denied.
func ChaosPolicy() *xacml.PolicySet {
	doctorRead := &xacml.Rule{
		ID:     "doctor-read",
		Effect: xacml.EffectPermit,
		Target: xacml.Target{AnyOf: []xacml.AnyOf{{AllOf: []xacml.AllOf{{Matches: []xacml.Match{
			{Op: xacml.CmpEq, Attr: xacml.Designator{Cat: xacml.CatSubject, ID: "role"}, Lit: xacml.String("doctor")},
		}}}}}},
	}
	deny := &xacml.Rule{ID: "default-deny", Effect: xacml.EffectDeny}
	return &xacml.PolicySet{ID: "root", Version: "v1", Alg: xacml.DenyUnlessPermit,
		Items: []xacml.PolicyItem{{Policy: &xacml.Policy{ID: "p", Version: "1",
			Alg: xacml.FirstApplicable, Rules: []*xacml.Rule{doctorRead, deny}}}}}
}

// ChaosRequest builds a Permit-outcome request under ChaosPolicy.
func ChaosRequest(dep *drams.Deployment) *xacml.Request {
	return dep.NewRequest().Add(xacml.CatSubject, "role", xacml.String("doctor"))
}

// ChaosDenyRequest builds a Deny-outcome request under ChaosPolicy.
func ChaosDenyRequest(dep *drams.Deployment) *xacml.Request {
	return dep.NewRequest().Add(xacml.CatSubject, "role", xacml.String("intern"))
}

// ChaosCatalogue returns the Byzantine-member attack fleet: one scenario
// per attack class, each annotated with the monitor check expected to
// catch it.
func ChaosCatalogue() []ChaosScenario {
	return []ChaosScenario{
		{
			Class:            ClassWithholding,
			Name:             "block withholding by the victim's member",
			Description:      "the member hosting the victim mines normally but suppresses all outbound block/tx gossip, trapping the victim's probe logs; the honest side's M3 deadline flags the gap",
			Expected:         []core.AlertType{core.AlertMessageSuppressed},
			MineAll:          true,
			VictimOnByzCloud: true,
			Run: func(ctx context.Context, h *ChaosHarness) (*ChaosInjection, error) {
				h.Byz.WithholdGossip()
				at := time.Now()
				_, height := h.Dep.InfraNode().Chain().Head()
				req := ChaosRequest(h.Dep)
				if _, err := h.Dep.RequestContext(ctx, h.Victim, req); err != nil {
					h.Byz.ReleaseGossip()
					return nil, fmt.Errorf("attack: withholding victim request: %w", err)
				}
				return &ChaosInjection{
					VictimReqID: req.ID, ReqIDs: []string{req.ID},
					At: at, Height: height, Cleanup: h.Byz.ReleaseGossip,
				}, nil
			},
		},
		{
			Class:       ClassEquivocation,
			Name:        "double-mined siblings with a conflicting record",
			Description: "after a clean exchange, the member mines two sibling blocks at the same height for different peer subsets, one carrying a forged conflicting pep.request for the victim's request; executing it raises AlertEquivocation",
			Expected:    []core.AlertType{core.AlertEquivocation},
			Run: func(ctx context.Context, h *ChaosHarness) (*ChaosInjection, error) {
				req := ChaosRequest(h.Dep)
				if _, err := h.Dep.RequestContext(ctx, h.Victim, req); err != nil {
					return nil, fmt.Errorf("attack: equivocation victim request: %w", err)
				}
				// Precondition: the honest records are on-chain, so the
				// forged record is the conflicting second write.
				if err := h.Dep.WaitForMatched(ctx, req.ID); err != nil {
					return nil, fmt.Errorf("attack: equivocation precondition: %w", err)
				}
				view := h.Dep.InfraNode().Chain()
				forged, err := ForgeConflictingRecord(view, h.LIIdentity(h.ByzTenant), h.Victim, req.ID)
				if err != nil {
					return nil, err
				}
				at := time.Now()
				_, height := view.Head()
				b1, b2, err := DoubleMine(ctx, view, h.Byz.Node().Name(),
					[]blockchain.Transaction{forged}, nil)
				if err != nil {
					return nil, err
				}
				names := h.NodeNames()
				half := (len(names) + 1) / 2
				DeliverBlock(h.Adversary, b1, names[:half]...)
				DeliverBlock(h.Adversary, b2, names[half:]...)
				// The loose tx guarantees the conflicting record executes
				// even when the sibling carrying it loses the fork race.
				DeliverTx(h.Adversary, forged, names...)
				return &ChaosInjection{
					VictimReqID: req.ID, ReqIDs: []string{req.ID},
					At: at, Height: height,
				}, nil
			},
		},
		{
			Class:       ClassCensorship,
			Name:        "producer censors the victim's probe logs",
			Description: "the designated block producer drops every transaction from the victim tenant's LI; the pdp-side records still anchor, arm the M3 deadline and expose the censored half",
			Expected:    []core.AlertType{core.AlertMessageSuppressed},
			ByzProducer: true,
			Run: func(ctx context.Context, h *ChaosHarness) (*ChaosInjection, error) {
				h.Byz.CensorSenders("li@" + h.Victim)
				at := time.Now()
				_, height := h.Dep.InfraNode().Chain().Head()
				req := ChaosRequest(h.Dep)
				if _, err := h.Dep.RequestContext(ctx, h.Victim, req); err != nil {
					h.Byz.LiftCensorship()
					return nil, fmt.Errorf("attack: censorship victim request: %w", err)
				}
				return &ChaosInjection{
					VictimReqID: req.ID, ReqIDs: []string{req.ID},
					At: at, Height: height, Cleanup: h.Byz.LiftCensorship,
				}, nil
			},
		},
		{
			Class:       ClassOrdering,
			Name:        "batch pipeline reordered at the PEP/PDP seam",
			Description: "a mixed-outcome DecideBatch pipeline is reversed on the wire after the probes logged the honest order, so every request is enforced with another request's decision; M2 flags the misaligned digests",
			Expected:    []core.AlertType{core.AlertResponseTampered},
			Run: func(ctx context.Context, h *ChaosHarness) (*ChaosInjection, error) {
				cli, err := h.Dep.Client(h.Victim)
				if err != nil {
					return nil, err
				}
				if err := h.Dep.TamperPEP(h.Victim, &federation.Tamper{Batch: ReverseBatch()}); err != nil {
					return nil, err
				}
				cleanup := func() { _ = h.Dep.TamperPEP(h.Victim, nil) }
				at := time.Now()
				_, height := h.Dep.InfraNode().Chain().Head()
				permit, deny := ChaosRequest(h.Dep), ChaosDenyRequest(h.Dep)
				if _, err := cli.DecideBatch(ctx, []*xacml.Request{permit, deny}); err != nil {
					cleanup()
					return nil, fmt.Errorf("attack: ordering batch: %w", err)
				}
				return &ChaosInjection{
					VictimReqID: permit.ID, ReqIDs: []string{permit.ID, deny.ID},
					At: at, Height: height, Cleanup: cleanup,
				}, nil
			},
		},
		{
			Class:       ClassSuppression,
			Name:        "anchoring delayed past the M3 window",
			Description: "the producer holds the victim's pep.response record in its mempool past the Δ-block deadline, then releases it; the record anchors late but the alert already stands",
			Expected:    []core.AlertType{core.AlertMessageSuppressed},
			ByzProducer: true,
			Run: func(ctx context.Context, h *ChaosHarness) (*ChaosInjection, error) {
				req := ChaosRequest(h.Dep)
				h.Byz.DelayRecords(HoldRecords(core.KindPEPResponse, req.ID))
				at := time.Now()
				_, height := h.Dep.InfraNode().Chain().Head()
				if _, err := h.Dep.RequestContext(ctx, h.Victim, req); err != nil {
					h.Byz.LiftCensorship()
					return nil, fmt.Errorf("attack: suppression victim request: %w", err)
				}
				return &ChaosInjection{
					VictimReqID: req.ID, ReqIDs: []string{req.ID},
					At: at, Height: height, Cleanup: h.Byz.LiftCensorship,
				}, nil
			},
		},
	}
}

// Campaign drives a chaos-scenario fleet against fresh federations,
// measuring detection as a first-class quantity: per-class detection rate,
// latency histograms (wall time and blocks from injection to the first
// matching alert) and false positives. The zero value plus Scenarios works;
// every trial is reproducible under the pinned Seed.
type Campaign struct {
	// Scenarios to run; each gets its own deployment (attack classes need
	// different production modes).
	Scenarios []ChaosScenario
	// Trials per scenario (default 3).
	Trials int
	// Seed pins the deployment and netsim RNGs (default 7).
	Seed uint64
	// Clouds sizes the federation (default 3 — Byzantine member, honest
	// member with the analyser, and the infrastructure cloud).
	Clouds int
	// Difficulty / TimeoutBlocks / EmptyBlockInterval shape the chain
	// (defaults 6 bits, Δ=8 blocks, 15ms).
	Difficulty         uint8
	TimeoutBlocks      uint64
	EmptyBlockInterval time.Duration
	// NetFaults is an optional chaos schedule replayed relative to every
	// trial's injection (partitions, heals, link faults).
	NetFaults []NetFault
	// DetectTimeout bounds each trial's wait for an alert (default 45s).
	DetectTimeout time.Duration
}

// ClassResult aggregates one scenario's trials.
type ClassResult struct {
	Class    string
	Name     string
	Expected []core.AlertType
	Trials   int
	Detected int
	// FalsePositives counts alerts on requests the attack never touched,
	// or of types the attack cannot legitimately cause.
	FalsePositives int
	// WallMillis / Blocks are detection-latency distributions (injection →
	// first matching alert), in milliseconds and chain blocks.
	WallMillis metrics.Summary
	Blocks     metrics.Summary
	// Err records an injection failure (the scenario's remaining trials
	// are skipped).
	Err string
}

// CampaignReport is the campaign outcome.
type CampaignReport struct {
	Seed    uint64
	Results []ClassResult
}

// AllDetected reports whether every scenario detected every trial with no
// false positives — the regression gate V7 asserts.
func (r *CampaignReport) AllDetected() bool {
	for _, res := range r.Results {
		if res.Detected != res.Trials || res.FalsePositives != 0 || res.Err != "" {
			return false
		}
	}
	return len(r.Results) > 0
}

func (c Campaign) withDefaults() Campaign {
	if c.Trials <= 0 {
		c.Trials = 3
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
	if c.Clouds <= 0 {
		c.Clouds = 3
	}
	if c.Difficulty == 0 {
		c.Difficulty = 6
	}
	if c.TimeoutBlocks == 0 {
		c.TimeoutBlocks = 8
	}
	if c.EmptyBlockInterval == 0 {
		c.EmptyBlockInterval = 15 * time.Millisecond
	}
	if c.DetectTimeout == 0 {
		c.DetectTimeout = 45 * time.Second
	}
	return c
}

// Run executes the campaign.
func (c Campaign) Run() (*CampaignReport, error) {
	c = c.withDefaults()
	rep := &CampaignReport{Seed: c.Seed}
	for _, sc := range c.Scenarios {
		res, err := c.runScenario(sc)
		if err != nil {
			return nil, fmt.Errorf("attack: campaign scenario %s: %w", sc.Class, err)
		}
		rep.Results = append(rep.Results, res)
	}
	return rep, nil
}

// runScenario builds a fresh federation in the production mode the scenario
// needs and runs its trials.
func (c Campaign) runScenario(sc ChaosScenario) (ClassResult, error) {
	dep, err := drams.New(drams.Config{
		Policy:             ChaosPolicy(),
		Topology:           federation.SimpleTopology("chaos", c.Clouds),
		Difficulty:         c.Difficulty,
		TimeoutBlocks:      c.TimeoutBlocks,
		EmptyBlockInterval: c.EmptyBlockInterval,
		Seed:               c.Seed,
		MineAll:            sc.MineAll,
	})
	if err != nil {
		return ClassResult{}, err
	}
	defer dep.Close()

	h, err := c.harness(dep, sc)
	if err != nil {
		return ClassResult{}, err
	}

	res := ClassResult{Class: sc.Class, Name: sc.Name, Expected: sc.Expected, Trials: c.Trials}
	wall, blocks := metrics.NewHistogram(0), metrics.NewHistogram(0)
	injected := map[string]bool{}
	for t := 0; t < c.Trials; t++ {
		ctx, cancel := context.WithTimeout(context.Background(), c.DetectTimeout)
		inj, err := sc.Run(ctx, h)
		if err != nil {
			res.Err = err.Error()
			cancel()
			break
		}
		for _, id := range inj.ReqIDs {
			injected[id] = true
		}
		var stopFaults chan struct{}
		if len(c.NetFaults) > 0 && dep.Net != nil {
			stopFaults = make(chan struct{})
			go ApplyNetFaults(dep.Net, c.NetFaults, stopFaults)
		}
		if a, ok := waitAnyAlert(ctx, dep, inj.VictimReqID, sc.Expected); ok {
			res.Detected++
			wall.Observe(float64(time.Since(inj.At)) / float64(time.Millisecond))
			if a.Height >= inj.Height {
				blocks.Observe(float64(a.Height - inj.Height))
			} else {
				blocks.Observe(0)
			}
		}
		if stopFaults != nil {
			close(stopFaults)
			dep.Net.Heal()
		}
		if inj.Cleanup != nil {
			inj.Cleanup()
		}
		cancel()
	}

	// Let released records and straggler alerts land before the
	// false-positive scan.
	time.Sleep(250 * time.Millisecond)
	expType := make(map[core.AlertType]bool, len(sc.Expected))
	for _, t := range sc.Expected {
		expType[t] = true
	}
	for _, a := range dep.Monitor.Alerts() {
		if !injected[a.ReqID] || !expType[a.Type] {
			res.FalsePositives++
		}
	}
	res.WallMillis = wall.Snapshot()
	res.Blocks = blocks.Snapshot()
	return res, nil
}

// harness wires the Byzantine wrapper, victim choice and adversary endpoint
// for one scenario.
func (c Campaign) harness(dep *drams.Deployment, sc ChaosScenario) (*ChaosHarness, error) {
	topo := dep.Topology()
	infra, err := topo.InfrastructureTenant()
	if err != nil {
		return nil, err
	}
	edge := topo.EdgeTenants()
	if len(edge) == 0 {
		return nil, fmt.Errorf("attack: campaign needs edge tenants")
	}
	// The Byzantine member defaults to the last cloud — away from both the
	// infrastructure node (the monitor's view) and the first non-infra
	// cloud (the analyser's) — unless the scenario needs mining control,
	// which the designated producer holds.
	byzTen := edge[len(edge)-1]
	byzCloud := byzTen.Cloud
	if sc.ByzProducer {
		byzCloud = infra.Cloud
	}
	victim := ""
	for _, t := range edge {
		if sc.VictimOnByzCloud == (t.Cloud == byzCloud) {
			victim = t.Name
			break
		}
	}
	if victim == "" {
		victim = edge[0].Name
	}
	ep, err := dep.Transport.Register("adversary@" + sc.Class)
	if err != nil {
		return nil, err
	}
	return &ChaosHarness{
		Dep:       dep,
		Seed:      c.Seed,
		Victim:    victim,
		Byz:       Byzantine(dep.Nodes[byzCloud]),
		ByzTenant: byzTen.Name,
		Adversary: ep,
	}, nil
}

// waitAnyAlert blocks until any of the expected alert types fires for reqID.
func waitAnyAlert(ctx context.Context, dep *drams.Deployment, reqID string, types []core.AlertType) (core.Alert, bool) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan core.Alert, len(types))
	for _, t := range types {
		go func(t core.AlertType) {
			if a, err := dep.Monitor.WaitForAlert(ctx, reqID, t); err == nil {
				ch <- a
			}
		}(t)
	}
	select {
	case a := <-ch:
		return a, true
	case <-ctx.Done():
		return core.Alert{}, false
	}
}
