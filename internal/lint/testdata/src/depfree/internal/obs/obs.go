// Package obs is a stratum member importing another stratum member, which
// is allowed.
package obs

import "fix/internal/metrics"

// NewRegistry wires the default registry.
func NewRegistry() *metrics.Registry { return &metrics.Registry{} }
