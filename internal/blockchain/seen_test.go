package blockchain

import (
	"testing"
	"time"

	"drams/internal/clock"
	"drams/internal/crypto"
	"drams/internal/netsim"
)

func TestSeenCacheRemembersWithinWindow(t *testing.T) {
	clk := clock.NewMock(time.Unix(1700000000, 0))
	c := newSeenCache(8, clk)
	d := crypto.Sum([]byte("payload"))
	if c.has(d) {
		t.Fatal("fresh cache claims to have seen the digest")
	}
	c.add(d)
	if !c.has(d) {
		t.Fatal("digest forgotten immediately after add")
	}
	// Still held one rotation later (entry moves to the previous
	// generation), gone after two.
	clk.Advance(seenTTL + time.Millisecond)
	if !c.has(d) {
		t.Fatal("digest dropped after a single rotation")
	}
	clk.Advance(seenTTL + time.Millisecond)
	if c.has(d) {
		t.Fatal("digest survived two rotations")
	}
}

func TestSeenCacheRotatesWhenFull(t *testing.T) {
	clk := clock.NewMock(time.Unix(1700000000, 0))
	c := newSeenCache(4, clk)
	first := crypto.Sum([]byte("first"))
	c.add(first)
	// Filling the current generation twice over churns first out even
	// though no time has passed.
	for i := 0; i < 8; i++ {
		c.add(crypto.Sum([]byte{byte(i)}))
	}
	if c.has(first) {
		t.Fatal("digest survived two size-triggered rotations")
	}
}

// TestTxGossipDedupSkipsDecode verifies the node-level effect: a payload
// delivered twice is admitted once and the duplicate is dropped before
// admission (no queue slot, no double-add error surfaced).
func TestTxGossipDedupSkipsDecode(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	net := netsim.New(netsim.Config{Seed: 7})
	defer net.Close()
	node, err := NewNode(NodeConfig{
		Name:    "solo",
		Chain:   testChainConfig(t, alice),
		Network: net,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Stop()

	tx, err := NewTransaction(alice, 1, putCall("k", "v"))
	if err != nil {
		t.Fatal(err)
	}
	payload := node.wireEncodeTx(tx)
	key := crypto.Sum(payload)
	node.handleTxGossip("peer", payload)
	waitFor(t, 5*time.Second, func() bool { return node.pool.Has(tx.ID()) },
		"gossiped tx never admitted")
	if !node.seenTx.has(key) {
		t.Fatal("admitted payload not remembered by the dedup cache")
	}
	node.handleTxGossip("peer", payload) // duplicate: digest short-circuits
	if got := node.pool.Len(); got != 1 {
		t.Fatalf("pool holds %d txs after duplicate delivery, want 1", got)
	}
}
