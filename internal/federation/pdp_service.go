package federation

import (
	"errors"
	"fmt"
	"sync/atomic"

	"drams/internal/metrics"
	"drams/internal/netsim"
	"drams/internal/xacml"
)

// Message kind for access-control evaluation calls.
const kindEvaluate = "ac.eval"

// PDPProbe is the hook interface a DRAMS agent implements at the PDP side
// (infrastructure tenant).
type PDPProbe interface {
	PDPRequestReceived(req *xacml.Request)
	PDPResponseSent(req *xacml.Request, res xacml.Result)
}

// PDPService exposes the federation PDP on the network. It wraps an
// xacml.Evaluator; the attack framework substitutes a compromised evaluator
// to model altered evaluation processes (threats of paper §I).
type PDPService struct {
	ep        *netsim.Endpoint
	evaluator atomic.Pointer[evalBox]
	probe     atomic.Pointer[probeBoxPDP]

	evaluations metrics.Counter
	failures    metrics.Counter
}

type evalBox struct{ ev xacml.Evaluator }
type probeBoxPDP struct{ p PDPProbe }

// NewPDPService registers the PDP service on the network at PDPAddr.
func NewPDPService(net *netsim.Network, evaluator xacml.Evaluator) (*PDPService, error) {
	ep, err := net.Register(PDPAddr)
	if err != nil {
		return nil, fmt.Errorf("federation: register PDP: %w", err)
	}
	s := &PDPService{ep: ep}
	s.evaluator.Store(&evalBox{ev: evaluator})
	ep.OnCall(kindEvaluate, s.handleEvaluate)
	return s, nil
}

// SetEvaluator swaps the decision engine (policy reload or attack
// injection).
func (s *PDPService) SetEvaluator(ev xacml.Evaluator) {
	s.evaluator.Store(&evalBox{ev: ev})
}

// SetProbe attaches the DRAMS agent hook.
func (s *PDPService) SetProbe(p PDPProbe) {
	s.probe.Store(&probeBoxPDP{p: p})
}

// Evaluations returns how many requests the service has processed.
func (s *PDPService) Evaluations() int64 { return s.evaluations.Value() }

func (s *PDPService) handleEvaluate(from string, payload []byte) ([]byte, error) {
	req, err := xacml.DecodeRequest(payload)
	if err != nil {
		s.failures.Inc()
		return nil, fmt.Errorf("federation: PDP decode request: %w", err)
	}
	if pb := s.probe.Load(); pb != nil && pb.p != nil {
		pb.p.PDPRequestReceived(req)
	}
	box := s.evaluator.Load()
	if box == nil || box.ev == nil {
		s.failures.Inc()
		return nil, errors.New("federation: PDP has no evaluator")
	}
	res, err := box.ev.Evaluate(req)
	if err != nil {
		s.failures.Inc()
		return nil, fmt.Errorf("federation: PDP evaluate: %w", err)
	}
	s.evaluations.Inc()
	if pb := s.probe.Load(); pb != nil && pb.p != nil {
		pb.p.PDPResponseSent(req, res)
	}
	return res.Encode(), nil
}
