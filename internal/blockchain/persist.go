package blockchain

import (
	"encoding/binary"
	"errors"
	"fmt"

	"drams/internal/crypto"
	"drams/internal/store"
)

// Persistence lets a node survive restarts: the best chain lives in a
// WAL-backed KV store and is replayed (with full validation) on reload.
//
// Two write paths exist:
//
//   - AttachStore installs incremental persistence: every block that joins
//     the best chain is appended to the store as part of accepting it, and
//     a reorganisation rewrites exactly the heights that changed. The
//     store's own WAL + auto-compaction bound the on-disk footprint, so a
//     long-running node never needs a "save" step — killing the process at
//     any instant loses at most the in-flight record, which replay
//     tolerates.
//   - SaveToStore remains as the one-shot snapshot used by tools and tests.
//
// Side branches are not persisted — after a restart the node re-learns any
// competing branch from its peers, which is safe because fork choice is
// deterministic.

const (
	persistBlockPrefix = "block/"
	persistHeadKey     = "head"
)

func persistBlockKey(height uint64) string {
	return fmt.Sprintf("%s%016x", persistBlockPrefix, height)
}

func persistHeadRecord(height uint64) []byte {
	var head [8]byte
	binary.BigEndian.PutUint64(head[:], height)
	return head[:]
}

// AttachStore installs kv as the chain's durable backing store: from now on
// every best-chain change is persisted incrementally (appends on the fast
// path, height-exact rewrites on reorganisations). Call it after
// LoadFromStore on a freshly constructed chain; blocks already applied are
// assumed to be in the store.
func (c *Chain) AttachStore(kv *store.KV) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.storeKV = kv
}

// PersistStats reports the incremental-persistence counters.
type PersistStats struct {
	// BlocksPersisted counts best-chain blocks written to the store.
	BlocksPersisted int64
	// PersistErrors counts failed store writes. A failure never blocks
	// consensus: the in-memory chain stays authoritative and the next
	// best-chain change retries the head record.
	PersistErrors int64
}

// PersistStats snapshots the persistence counters (zero without a store).
func (c *Chain) PersistStats() PersistStats {
	return PersistStats{
		BlocksPersisted: c.persisted.Value(),
		PersistErrors:   c.persistErrs.Value(),
	}
}

// persistAppendLocked writes one block extending the best chain plus the
// updated head record. Caller holds c.mu.
func (c *Chain) persistAppendLocked(b *Block) {
	if c.storeKV == nil {
		return
	}
	puts := map[string][]byte{
		persistBlockKey(b.Header.Height): b.Encode(),
		persistHeadKey:                   persistHeadRecord(b.Header.Height),
	}
	if err := c.storeKV.Batch(puts); err != nil {
		c.persistErrs.Inc()
		return
	}
	c.persisted.Inc()
}

// persistReorgLocked rewrites the store after a best-chain switch: every
// height where the new best chain diverges from the old one is re-written,
// the head record is updated, and stale heights above the new head are
// deleted. Caller holds c.mu with c.bestChain already switched; oldBest is
// the previous best chain.
func (c *Chain) persistReorgLocked(oldBest []crypto.Digest) {
	if c.storeKV == nil {
		return
	}
	newBest := c.bestChain
	puts := make(map[string][]byte)
	for h := 1; h < len(newBest); h++ {
		if h < len(oldBest) && oldBest[h] == newBest[h] {
			continue // shared prefix: already persisted
		}
		puts[persistBlockKey(uint64(h))] = c.blocks[newBest[h]].Encode()
	}
	puts[persistHeadKey] = persistHeadRecord(uint64(len(newBest) - 1))
	if err := c.storeKV.Batch(puts); err != nil {
		c.persistErrs.Inc()
		return
	}
	c.persisted.Add(int64(len(puts) - 1))
	// Deletes after the head record landed: a crash in between leaves
	// unreferenced blocks above head, which LoadFromStore ignores.
	for h := len(newBest); h < len(oldBest); h++ {
		if err := c.storeKV.Delete(persistBlockKey(uint64(h))); err != nil {
			c.persistErrs.Inc()
		}
	}
}

// truncateStoreAbove drops persisted blocks above height and resets the
// head record, discarding a tail that failed validation on reload (torn
// final write, tampered records). The surviving prefix stays loadable.
func truncateStoreAbove(kv *store.KV, height uint64) error {
	for _, key := range kv.Keys(persistBlockPrefix) {
		if key > persistBlockKey(height) {
			if err := kv.Delete(key); err != nil {
				return err
			}
		}
	}
	return kv.Put(persistHeadKey, persistHeadRecord(height))
}

// SaveToStore writes the best chain (excluding genesis, which is derived
// from Config) to kv as a one-shot snapshot, replacing any previous
// contents. Nodes with an attached store do not need it — incremental
// persistence keeps the store current — but tools and tests use it to
// snapshot a chain that was never attached.
func (c *Chain) SaveToStore(kv *store.KV) error {
	hashes := c.BestChainHashes()
	puts := make(map[string][]byte, len(hashes))
	for _, h := range hashes {
		b, ok := c.BlockByHash(h)
		if !ok {
			return fmt.Errorf("blockchain: save: missing block %s", h.Short())
		}
		if b.Header.Height == 0 {
			continue
		}
		puts[persistBlockKey(b.Header.Height)] = b.Encode()
	}
	puts[persistHeadKey] = persistHeadRecord(uint64(len(hashes) - 1))
	// Remove stale blocks above the new head (shorter chain after resave).
	for _, key := range kv.Keys(persistBlockPrefix) {
		if _, ok := puts[key]; !ok {
			if err := kv.Delete(key); err != nil {
				return err
			}
		}
	}
	return kv.Batch(puts)
}

// LoadFromStore replays a snapshot into the chain with full validation
// (signatures, PoW, difficulty schedule, nonces) and returns how many
// blocks were applied. The chain should be freshly constructed with the
// same Config that produced the snapshot; a snapshot from a different
// genesis fails validation on its first block. On error the returned count
// still reports the validated prefix that was applied — callers may
// truncate the store there and recover the rest from peers.
func (c *Chain) LoadFromStore(kv *store.KV) (int, error) {
	raw, err := kv.Get(persistHeadKey)
	if errors.Is(err, store.ErrNotFound) {
		return 0, nil // empty store: nothing to load
	}
	if err != nil {
		return 0, err
	}
	if len(raw) != 8 {
		return 0, fmt.Errorf("blockchain: load: corrupt head record")
	}
	head := binary.BigEndian.Uint64(raw)
	applied := 0
	for h := uint64(1); h <= head; h++ {
		data, err := kv.Get(persistBlockKey(h))
		if err != nil {
			return applied, fmt.Errorf("blockchain: load: missing block at height %d: %w", h, err)
		}
		b, err := DecodeBlock(data)
		if err != nil {
			return applied, fmt.Errorf("blockchain: load height %d: %w", h, err)
		}
		if err := c.AddBlock(b); err != nil && !errors.Is(err, ErrKnownBlock) {
			return applied, fmt.Errorf("blockchain: load height %d: %w", h, err)
		}
		applied++
	}
	return applied, nil
}
