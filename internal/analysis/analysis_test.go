package analysis

import (
	"fmt"
	"testing"

	"drams/internal/xacml"
)

// The single most important test in this package: the analyser's normalised
// form must agree with the PDP on randomly generated policies and requests.
// This is the differential check underpinning the monitor's M5 detection —
// if the two implementations agreed only by construction (shared code), the
// check would be vacuous.
func TestDifferentialAnalyserVsPDP(t *testing.T) {
	shapes := []xacml.GenParams{
		{Rules: 3, Policies: 2, Attrs: 2, ValuesPerAttr: 3, MaxCondDepth: 2, MustBePresentRate: 0},
		{Rules: 6, Policies: 3, Attrs: 3, ValuesPerAttr: 4, MaxCondDepth: 3, MustBePresentRate: 0.15},
		{Rules: 10, Policies: 4, Attrs: 4, ValuesPerAttr: 5, MaxCondDepth: 2, MustBePresentRate: 0.3},
	}
	for si, shape := range shapes {
		for seed := uint64(0); seed < 8; seed++ {
			gen := xacml.NewGenerator(seed*131+uint64(si), shape)
			ps := gen.PolicySet(fmt.Sprintf("s%d-%d", si, seed), "v1")
			pdp := xacml.NewPDP(ps)
			compiled := Compile(ps)
			for i := 0; i < 150; i++ {
				r := gen.Request(fmt.Sprintf("r%d", i))
				res, err := pdp.Evaluate(r)
				if err != nil {
					t.Fatal(err)
				}
				exp := compiled.ExpectedSimple(r)
				if exp != res.Decision {
					t.Fatalf("shape %d seed %d req %d: PDP=%s analyser=%s\npolicy: %s",
						si, seed, i, res.Decision, exp, ps.Encode())
				}
			}
		}
	}
}

// Differential check over the abstract domain (covers systematically chosen
// boundary values rather than random ones).
func TestDifferentialOverAbstractDomain(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		gen := xacml.NewGenerator(900+seed, xacml.GenParams{
			Rules: 4, Policies: 2, Attrs: 2, ValuesPerAttr: 3, MaxCondDepth: 2, MustBePresentRate: 0.2})
		ps := gen.PolicySet("root", "v1")
		pdp := xacml.NewPDP(ps)
		compiled := Compile(ps)
		dom := ExtractDomain(ps)
		for _, r := range dom.Requests(EnumParams{MaxRequests: 3000, Seed: seed}) {
			res, err := pdp.Evaluate(r)
			if err != nil {
				t.Fatal(err)
			}
			if got := compiled.ExpectedSimple(r); got != res.Decision {
				t.Fatalf("seed %d: PDP=%s analyser=%s on %s", seed, res.Decision, got, r.CanonicalBytes())
			}
		}
	}
}

func docPolicy() *xacml.PolicySet {
	permitDoctors := &xacml.Rule{
		ID:     "permit-doctors",
		Effect: xacml.EffectPermit,
		Target: xacml.TargetMatching(xacml.CatSubject, "role", xacml.String("doctor")),
	}
	denyAll := &xacml.Rule{ID: "deny-rest", Effect: xacml.EffectDeny}
	pol := &xacml.Policy{ID: "p", Version: "1", Alg: xacml.FirstApplicable,
		Rules: []*xacml.Rule{permitDoctors, denyAll}}
	return &xacml.PolicySet{ID: "root", Version: "v1", Alg: xacml.DenyUnlessPermit,
		Items: []xacml.PolicyItem{{Policy: pol}}}
}

func TestExpectedDecisionKnownPolicy(t *testing.T) {
	c := Compile(docPolicy())
	doctor := xacml.NewRequest("1").Add(xacml.CatSubject, "role", xacml.String("doctor"))
	nurse := xacml.NewRequest("2").Add(xacml.CatSubject, "role", xacml.String("nurse"))
	empty := xacml.NewRequest("3")
	if got := c.ExpectedSimple(doctor); got != xacml.Permit {
		t.Fatalf("doctor = %s", got)
	}
	if got := c.ExpectedSimple(nurse); got != xacml.Deny {
		t.Fatalf("nurse = %s", got)
	}
	if got := c.ExpectedSimple(empty); got != xacml.Deny {
		t.Fatalf("empty = %s", got)
	}
	if c.RuleCount() != 2 {
		t.Fatalf("rule count = %d", c.RuleCount())
	}
}

func TestVerifyDecision(t *testing.T) {
	c := Compile(docPolicy())
	doctor := xacml.NewRequest("1").Add(xacml.CatSubject, "role", xacml.String("doctor"))
	if err := c.VerifyDecision(doctor, xacml.Permit); err != nil {
		t.Fatalf("correct decision rejected: %v", err)
	}
	if err := c.VerifyDecision(doctor, xacml.Deny); err == nil {
		t.Fatal("wrong decision accepted")
	}
}

func TestDomainExtractionCoversConstantsAndBoundaries(t *testing.T) {
	cond := &xacml.AndExpr{Args: []xacml.Expr{
		&xacml.CmpExpr{Op: xacml.CmpGe, Attr: xacml.Designator{Cat: xacml.CatEnvironment, ID: "hour"}, Lit: xacml.Int(8)},
		&xacml.CmpExpr{Op: xacml.CmpLt, Attr: xacml.Designator{Cat: xacml.CatEnvironment, ID: "hour"}, Lit: xacml.Int(18)},
	}}
	ru := &xacml.Rule{ID: "office-hours", Effect: xacml.EffectPermit, Condition: cond,
		Target: xacml.TargetMatching(xacml.CatSubject, "role", xacml.String("clerk"))}
	ps := &xacml.PolicySet{ID: "s", Version: "1", Alg: xacml.DenyUnlessPermit,
		Items: []xacml.PolicyItem{{Policy: &xacml.Policy{ID: "p", Version: "1",
			Alg: xacml.FirstApplicable, Rules: []*xacml.Rule{ru}}}}}
	dom := ExtractDomain(ps)
	if dom.AttrCount() != 2 {
		t.Fatalf("attrs = %d", dom.AttrCount())
	}
	reqs := dom.Requests(DefaultEnumParams())
	// hour domain: {7,8,9,17,18,19, fresh-int, fresh-string?} — at minimum
	// the threshold neighbours must appear.
	sawHour := map[int64]bool{}
	for _, r := range reqs {
		for _, v := range r.Get(xacml.CatEnvironment, "hour") {
			if v.T == xacml.TypeInt {
				sawHour[v.I] = true
			}
		}
	}
	for _, want := range []int64{7, 8, 9, 17, 18, 19} {
		if !sawHour[want] {
			t.Errorf("domain missing boundary hour %d (saw %v)", want, sawHour)
		}
	}
}

func TestDomainEnumerationExhaustiveWhenSmall(t *testing.T) {
	ps := docPolicy()
	dom := ExtractDomain(ps)
	size := dom.Size()
	reqs := dom.Requests(EnumParams{MaxRequests: size + 10})
	if len(reqs) != size {
		t.Fatalf("enumerated %d, domain size %d", len(reqs), size)
	}
	// All distinct.
	seen := map[string]bool{}
	for _, r := range reqs {
		k := string(r.CanonicalBytes())
		if seen[k] {
			t.Fatalf("duplicate abstract request %q", k)
		}
		seen[k] = true
	}
}

func TestDomainSamplingBounded(t *testing.T) {
	gen := xacml.NewGenerator(4, xacml.GenParams{Rules: 10, Policies: 5, Attrs: 6, ValuesPerAttr: 6, MaxCondDepth: 3})
	ps := gen.PolicySet("big", "1")
	dom := ExtractDomain(ps)
	reqs := dom.Requests(EnumParams{MaxRequests: 500, Seed: 9})
	if len(reqs) > 500 {
		t.Fatalf("sampling exceeded cap: %d", len(reqs))
	}
}

func TestCompletenessIncompletePolicy(t *testing.T) {
	// Only doctors are mentioned: everyone else is NotApplicable under
	// first-applicable without a default rule.
	pol := &xacml.Policy{ID: "p", Version: "1", Alg: xacml.FirstApplicable,
		Rules: []*xacml.Rule{{
			ID: "permit-doctors", Effect: xacml.EffectPermit,
			Target: xacml.TargetMatching(xacml.CatSubject, "role", xacml.String("doctor")),
		}}}
	ps := &xacml.PolicySet{ID: "s", Version: "1", Alg: xacml.FirstApplicable,
		Items: []xacml.PolicyItem{{Policy: pol}}}
	rep := CheckCompleteness(Compile(ps), ExtractDomain(ps), DefaultEnumParams())
	if rep.Complete {
		t.Fatal("incomplete policy reported complete")
	}
	if rep.NotApplicable == 0 || len(rep.NAWitnesses) == 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestCompletenessCompletePolicy(t *testing.T) {
	rep := CheckCompleteness(Compile(docPolicy()), ExtractDomain(docPolicy()), DefaultEnumParams())
	if !rep.Complete {
		t.Fatalf("deny-unless-permit policy must be complete: %+v NA witnesses %v", rep, rep.NAWitnesses)
	}
}

func TestChangeImpactDetectsWidening(t *testing.T) {
	before := docPolicy()
	after := docPolicy()
	after.Version = "v2"
	// v2 additionally permits nurses.
	nurseRule := &xacml.Rule{
		ID:     "permit-nurses",
		Effect: xacml.EffectPermit,
		Target: xacml.TargetMatching(xacml.CatSubject, "role", xacml.String("nurse")),
	}
	pol := after.Items[0].Policy
	pol.Rules = append([]*xacml.Rule{nurseRule}, pol.Rules...)
	rep := ChangeImpact(before, after, DefaultEnumParams())
	if rep.Equivalent || rep.Differences == 0 {
		t.Fatalf("widening not detected: %+v", rep)
	}
	// Every witness must involve a nurse request flipping Deny → Permit.
	for _, w := range rep.Witnesses {
		if w.Before != xacml.Deny || w.After != xacml.Permit {
			t.Fatalf("unexpected witness: %s", w)
		}
		if !w.Request.Get(xacml.CatSubject, "role").Contains(xacml.String("nurse")) {
			t.Fatalf("witness without nurse role: %s", w)
		}
	}
}

func TestChangeImpactEquivalentPolicies(t *testing.T) {
	before := docPolicy()
	after := docPolicy()
	after.Version = "v2" // version differs, semantics identical
	rep := ChangeImpact(before, after, DefaultEnumParams())
	if !rep.Equivalent || rep.Differences != 0 {
		t.Fatalf("equivalent versions reported different: %+v", rep.Witnesses)
	}
}

func TestChangeImpactReorderUnderDenyOverrides(t *testing.T) {
	// Reordering rules under deny-overrides is semantics-preserving.
	gen := xacml.NewGenerator(31, xacml.GenParams{Rules: 5, Policies: 1, Attrs: 2, ValuesPerAttr: 3, MaxCondDepth: 2})
	before := gen.PolicySet("root", "v1")
	before.Alg = xacml.DenyOverrides
	for _, item := range before.Items {
		item.Policy.Alg = xacml.DenyOverrides
	}
	after := before.Clone()
	after.Version = "v2"
	rules := after.Items[0].Policy.Rules
	for i, j := 0, len(rules)-1; i < j; i, j = i+1, j-1 {
		rules[i], rules[j] = rules[j], rules[i]
	}
	rep := ChangeImpact(before, after, DefaultEnumParams())
	if !rep.Equivalent {
		t.Fatalf("deny-overrides reorder changed semantics: %v", rep.Witnesses)
	}
}

func TestCheckRedundancy(t *testing.T) {
	// Rule "dup" duplicates "permit-doctors" and is redundant; the default
	// deny is not.
	dup := &xacml.Rule{ID: "dup", Effect: xacml.EffectPermit,
		Target: xacml.TargetMatching(xacml.CatSubject, "role", xacml.String("doctor"))}
	ps := docPolicy()
	pol := ps.Items[0].Policy
	pol.Alg = xacml.DenyOverrides // order-insensitive so dup is fully shadowed
	pol.Rules = append(pol.Rules, dup)
	rep := CheckRedundancy(ps, DefaultEnumParams())
	found := map[string]bool{}
	for _, id := range rep.RedundantRules {
		found[id] = true
	}
	if !found["dup"] {
		t.Fatalf("dup not reported redundant: %+v", rep)
	}
	if found["deny-rest"] {
		t.Fatal("deny-rest wrongly reported redundant")
	}
}

func TestCompiledHandlesNestedSetsAndOnlyOne(t *testing.T) {
	docP := &xacml.Policy{ID: "docs", Version: "1", Alg: xacml.FirstApplicable,
		Target: xacml.TargetMatching(xacml.CatSubject, "role", xacml.String("doctor")),
		Rules:  []*xacml.Rule{{ID: "p", Effect: xacml.EffectPermit}}}
	nurseP := &xacml.Policy{ID: "nurses", Version: "1", Alg: xacml.FirstApplicable,
		Target: xacml.TargetMatching(xacml.CatSubject, "role", xacml.String("nurse")),
		Rules:  []*xacml.Rule{{ID: "d", Effect: xacml.EffectDeny}}}
	inner := &xacml.PolicySet{ID: "inner", Version: "1", Alg: xacml.OnlyOneApplicable,
		Items: []xacml.PolicyItem{{Policy: docP}, {Policy: nurseP}}}
	root := &xacml.PolicySet{ID: "root", Version: "1", Alg: xacml.FirstApplicable,
		Items: []xacml.PolicyItem{{Set: inner}}}

	c := Compile(root)
	pdp := xacml.NewPDP(root)
	for _, role := range []string{"doctor", "nurse", "admin"} {
		r := xacml.NewRequest("x").Add(xacml.CatSubject, "role", xacml.String(role))
		res, _ := pdp.Evaluate(r)
		if got := c.ExpectedSimple(r); got != res.Decision {
			t.Fatalf("role %s: analyser %s vs PDP %s", role, got, res.Decision)
		}
	}
	// Both applicable (doctor AND nurse roles in one bag) → IndeterminateDP.
	r := xacml.NewRequest("x").
		Add(xacml.CatSubject, "role", xacml.String("doctor")).
		Add(xacml.CatSubject, "role", xacml.String("nurse"))
	res, _ := pdp.Evaluate(r)
	if got := c.ExpectedSimple(r); got != res.Decision {
		t.Fatalf("dual role: analyser %s vs PDP %s", got, res.Decision)
	}
}
