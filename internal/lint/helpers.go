package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// matchPath reports whether a module-relative package path matches a
// pattern: exact, or prefix with a trailing "/..." wildcard ("cmd/..."
// matches cmd and everything under it).
func matchPath(rel, pattern string) bool {
	if prefix, ok := strings.CutSuffix(pattern, "/..."); ok {
		return rel == prefix || strings.HasPrefix(rel, prefix+"/")
	}
	return rel == pattern
}

func matchAnyPath(rel string, patterns []string) bool {
	for _, p := range patterns {
		if matchPath(rel, p) {
			return true
		}
	}
	return false
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (through parens), or nil for builtins, conversions, and indirect calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fn].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fn.Sel].(*types.Func)
		return f
	}
	return nil
}

// isPkgFunc reports whether the call invokes pkgPath.name (a package-level
// function, e.g. context.Background).
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) bool {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != pkgPath {
		return false
	}
	for _, n := range names {
		if f.Name() == n {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// funcTypeTakesContext reports whether any parameter of ft is a
// context.Context.
func funcTypeTakesContext(info *types.Info, ft *ast.FuncType) bool {
	if ft == nil || ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if tv, ok := info.Types[field.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

// walkWithStack traverses root keeping the ancestor chain; fn returning
// false prunes the subtree. The stack passed to fn excludes n itself.
func walkWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// receiverIdentObj resolves the receiver parameter object of a method
// declaration, or nil for functions and anonymous receivers.
func receiverIdentObj(info *types.Info, decl *ast.FuncDecl) types.Object {
	if decl.Recv == nil || len(decl.Recv.List) == 0 || len(decl.Recv.List[0].Names) == 0 {
		return nil
	}
	return info.Defs[decl.Recv.List[0].Names[0]]
}

// selectorRoot unwraps a chain of selectors/parens (a.b.c → a) and returns
// the root identifier, or nil.
func selectorRoot(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isMapOrSlice reports whether t's underlying type is a map or slice.
func isMapOrSlice(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Map, *types.Slice:
		return true
	}
	return false
}

// importPathOf extracts the unquoted import path of a spec.
func importPathOf(spec *ast.ImportSpec) string {
	return strings.Trim(spec.Path.Value, `"`)
}
