package xacml

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"drams/internal/crypto"
)

// ErrNoPolicy is returned when the PDP has no policy loaded.
var ErrNoPolicy = errors.New("xacml: no policy loaded")

// Result is the full PDP response for one request.
type Result struct {
	// RequestID echoes the request correlation ID.
	RequestID string `json:"requestId"`
	// Decision is the simplified four-valued decision a PEP acts upon.
	Decision Decision `json:"decision"`
	// Extended preserves the six-valued decision for diagnostics.
	Extended Decision `json:"extended"`
	// Obligations must be fulfilled by the PEP alongside enforcement.
	Obligations []Obligation `json:"obligations,omitempty"`
	// PolicyID and PolicyVersion identify the evaluated policy set.
	PolicyID      string `json:"policyId"`
	PolicyVersion string `json:"policyVersion"`
	// PolicyDigest is the canonical digest of the evaluated policy set;
	// the monitor's M6 check compares it with the PAP-anchored digest.
	PolicyDigest crypto.Digest `json:"policyDigest"`
}

// Digest returns the content digest of the result (decision + obligations +
// policy identity), used for the response-integrity check M2.
func (res Result) Digest() crypto.Digest {
	chunks := [][]byte{
		[]byte(res.RequestID),
		{byte(res.Decision)},
		[]byte(res.PolicyID),
		[]byte(res.PolicyVersion),
		res.PolicyDigest.Bytes(),
	}
	for _, o := range res.Obligations {
		b, err := json.Marshal(o)
		if err != nil {
			continue
		}
		chunks = append(chunks, b)
	}
	return crypto.SumAll(chunks...)
}

// Encode serialises the result as JSON.
func (res Result) Encode() []byte {
	b, err := json.Marshal(res)
	if err != nil {
		panic(fmt.Sprintf("xacml: encode result: %v", err))
	}
	return b
}

// DecodeResult parses a JSON result.
func DecodeResult(data []byte) (Result, error) {
	var res Result
	if err := json.Unmarshal(data, &res); err != nil {
		return Result{}, fmt.Errorf("xacml: decode result: %w", err)
	}
	return res, nil
}

// PDP is the Policy Decision Point: it evaluates requests against the
// currently active policy set. Policy swaps are atomic; evaluation is
// lock-free on the hot path. With a DecisionCache attached (SetCache),
// repeated requests with identical attribute content are answered from the
// cache — bit-for-bit the result full evaluation would produce, since a
// decision is a pure function of (attributes, policy set) and entries are
// keyed by both digests.
type PDP struct {
	current atomic.Pointer[loadedPolicy]
	cache   atomic.Pointer[DecisionCache]
	evals   atomic.Int64
}

type loadedPolicy struct {
	set    *PolicySet
	digest crypto.Digest
}

// NewPDP returns a PDP, optionally pre-loaded. The decision cache is off;
// attach one with SetCache or use NewCachedPDP.
func NewPDP(ps *PolicySet) *PDP {
	p := &PDP{}
	if ps != nil {
		p.Load(ps)
	}
	return p
}

// NewCachedPDP returns a PDP with a decision cache of roughly cacheSize
// entries attached.
func NewCachedPDP(ps *PolicySet, cacheSize int) *PDP {
	p := NewPDP(ps)
	p.SetCache(NewDecisionCache(cacheSize))
	return p
}

// SetCache attaches a decision cache (nil detaches, restoring
// evaluate-from-scratch behaviour).
func (p *PDP) SetCache(c *DecisionCache) { p.cache.Store(c) }

// Cache returns the attached decision cache, or nil.
func (p *PDP) Cache() *DecisionCache { return p.cache.Load() }

// Load activates a policy set (clone-on-load so later caller mutations
// cannot affect evaluation). An attached cache is purged; entries are also
// keyed by policy digest, so even an un-purged entry could not leak a stale
// decision.
func (p *PDP) Load(ps *PolicySet) {
	cl := ps.Clone()
	p.current.Store(&loadedPolicy{set: cl, digest: cl.Digest()})
	if c := p.cache.Load(); c != nil {
		c.Purge()
	}
}

// Policy returns the active policy set and its digest.
func (p *PDP) Policy() (*PolicySet, crypto.Digest, error) {
	lp := p.current.Load()
	if lp == nil {
		return nil, crypto.Digest{}, ErrNoPolicy
	}
	return lp.set, lp.digest, nil
}

// Version returns the active policy set's version ("" before any Load).
func (p *PDP) Version() string {
	lp := p.current.Load()
	if lp == nil {
		return ""
	}
	return lp.set.Version
}

// Evaluations returns how many requests this PDP has evaluated.
func (p *PDP) Evaluations() int64 { return p.evals.Load() }

// Evaluate computes the decision for a request, answering from the
// decision cache when one is attached and the request's attribute content
// was evaluated before under the active policy set. Only the correlation ID
// differs between requests sharing a cache entry, and it is re-stamped per
// call, so cached and freshly evaluated results are identical.
func (p *PDP) Evaluate(r *Request) (Result, error) {
	// The cache epoch is pinned before the policy snapshot: a Load (and
	// its Purge) between here and the final Put makes the Put a no-op, so
	// a decision computed against policy A can never be parked in the
	// cache a hot swap to policy B just cleared — and Get is additionally
	// keyed by A's digest, so even a surviving entry could not serve B.
	cache := p.cache.Load()
	var epoch uint64
	if cache != nil {
		epoch = cache.Epoch()
	}
	lp := p.current.Load()
	if lp == nil {
		return Result{}, ErrNoPolicy
	}
	p.evals.Add(1)
	var key crypto.Digest
	if cache != nil {
		key = r.Digest()
		if res, ok := cache.Get(key, lp.digest); ok {
			res.RequestID = r.ID
			return res, nil
		}
	}
	ext := lp.set.Evaluate(r)
	res := Result{
		RequestID:     r.ID,
		Decision:      ext.Simple(),
		Extended:      ext,
		PolicyID:      lp.set.ID,
		PolicyVersion: lp.set.Version,
		PolicyDigest:  lp.digest,
	}
	res.Obligations = lp.set.CollectObligations(r, ext.Simple())
	if cache != nil {
		stored := res
		stored.RequestID = ""
		cache.Put(key, lp.digest, stored, epoch)
	}
	return res, nil
}

// Evaluator is the minimal decision interface consumed by PEPs and by the
// attack-injection layer (a compromised PDP wraps a PDP with this).
type Evaluator interface {
	Evaluate(r *Request) (Result, error)
}

var _ Evaluator = (*PDP)(nil)

// PRP is the Policy Retrieval/Administration Point: versioned policy
// storage with an activation pointer and digest history. In FaaS the PRP
// lives in the infrastructure tenant next to the PDP (paper Figure 1).
type PRP struct {
	mu       sync.RWMutex
	versions map[string]*PolicySet // version → policy set
	order    []string              // activation history, oldest first
	active   string
}

// NewPRP returns an empty PRP.
func NewPRP() *PRP {
	return &PRP{versions: make(map[string]*PolicySet)}
}

// ErrUnknownVersion is returned for missing policy versions.
var ErrUnknownVersion = errors.New("xacml: unknown policy version")

// Publish stores a policy set under its version and makes it active. The
// version string must be fresh.
func (p *PRP) Publish(ps *PolicySet) (crypto.Digest, error) {
	if ps.Version == "" {
		return crypto.Digest{}, errors.New("xacml: policy set needs a version")
	}
	cl := ps.Clone()
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.versions[cl.Version]; ok {
		return crypto.Digest{}, fmt.Errorf("xacml: version %q already published", cl.Version)
	}
	p.versions[cl.Version] = cl
	p.order = append(p.order, cl.Version)
	p.active = cl.Version
	return cl.Digest(), nil
}

// Ensure stores a policy set under its version if absent, WITHOUT touching
// the activation pointer — the idempotent staging entry point the PAP
// watcher uses while mirroring chain-replicated versions. Re-ensuring the
// same version with identical content is a no-op; divergent content for an
// existing version is an error.
func (p *PRP) Ensure(ps *PolicySet) error {
	if ps.Version == "" {
		return errors.New("xacml: policy set needs a version")
	}
	cl := ps.Clone()
	p.mu.Lock()
	defer p.mu.Unlock()
	if existing, ok := p.versions[cl.Version]; ok {
		if existing.Digest() != cl.Digest() {
			return fmt.Errorf("xacml: version %q already stored with different content", cl.Version)
		}
		return nil
	}
	p.versions[cl.Version] = cl
	p.order = append(p.order, cl.Version)
	return nil
}

// Active returns the active policy set and its version.
func (p *PRP) Active() (*PolicySet, string, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.active == "" {
		return nil, "", ErrNoPolicy
	}
	return p.versions[p.active], p.active, nil
}

// Version retrieves a specific published version.
func (p *PRP) Version(v string) (*PolicySet, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	ps, ok := p.versions[v]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownVersion, v)
	}
	return ps, nil
}

// Activate switches the active pointer to an already-published version
// (used for rollback).
func (p *PRP) Activate(v string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.versions[v]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownVersion, v)
	}
	p.active = v
	return nil
}

// History returns the publication order of versions.
func (p *PRP) History() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]string, len(p.order))
	copy(out, p.order)
	return out
}
