#!/usr/bin/env bash
# smoke_federation.sh — multi-process federation smoke test.
#
# Starts three drams-node daemons on loopback (infrastructure + two edge
# tenants), waits until every process reports chain height >= TARGET_HEIGHT
# and each edge has served at least one end-to-end access decision, then
# exercises a live policy rollout: tenant-1's process pushes a restricting
# v2 policy on-chain mid-run and the script asserts that
#
#   1. all three processes activate v2 at the SAME chain height, and
#   2. each edge's decision stream flips from Permit-under-v1 to
#      Deny-under-v2 without any process restarting,
#
# then checks state-digest convergence and tears everything down. Exits
# non-zero on any failure or on the hard timeout.
#
# Usage: scripts/smoke_federation.sh [bin-dir]
set -u

TIMEOUT="${SMOKE_TIMEOUT:-120}"
TARGET_HEIGHT="${SMOKE_HEIGHT:-5}"
PUSH_HEIGHT="${SMOKE_PUSH_HEIGHT:-8}"
PORT_BASE="${SMOKE_PORT_BASE:-19701}"
WORKDIR="$(mktemp -d)"
BIN="${1:-$WORKDIR}/drams-node"

cleanup() {
    [ -n "${PIDS:-}" ] && kill $PIDS 2>/dev/null
    wait 2>/dev/null
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

if [ ! -x "$BIN" ]; then
    echo "building drams-node..."
    go build -o "$BIN" ./cmd/drams-node || exit 1
fi

# The v2 update: reads revoked (doctor-read flips Permit -> Deny).
"$BIN" -print-policy restricted:v2 > "$WORKDIR/v2.json" || exit 1

P1=$((PORT_BASE)) P2=$((PORT_BASE + 1)) P3=$((PORT_BASE + 2))
A1="127.0.0.1:$P1" A2="127.0.0.1:$P2" A3="127.0.0.1:$P3"
COMMON="-federation tenant-1,tenant-2 -seed 7 -difficulty 8 -run-for ${TIMEOUT}s"

"$BIN" -listen "$A1" -join "$A2,$A3" -tenant infrastructure $COMMON \
    >"$WORKDIR/infra.log" 2>&1 &
PIDS="$!"
"$BIN" -listen "$A2" -join "$A1,$A3" -tenant tenant-1 -request-every 300ms \
    -policy-file "$WORKDIR/v2.json" -policy-at-height "$PUSH_HEIGHT" -policy-delta 4 \
    $COMMON >"$WORKDIR/t1.log" 2>&1 &
PIDS="$PIDS $!"
"$BIN" -listen "$A3" -join "$A1,$A2" -tenant tenant-2 -request-every 300ms \
    $COMMON >"$WORKDIR/t2.log" 2>&1 &
PIDS="$PIDS $!"

echo "3 daemons up (logs in $WORKDIR), waiting for height >= $TARGET_HEIGHT, decisions, and the v2 rollout..."

fail() {
    echo "SMOKE FAILED: $1" >&2
    for log in infra t1 t2; do
        echo "--- $log.log (tail) ---" >&2
        tail -25 "$WORKDIR/$log.log" >&2
    done
    exit 1
}

deadline=$(( $(date +%s) + TIMEOUT ))
ok=""
while [ "$(date +%s)" -lt "$deadline" ]; do
    heights_ok=true
    for log in infra t1 t2; do
        h=$(grep -o 'status height=[0-9]*' "$WORKDIR/$log.log" 2>/dev/null | tail -1 | grep -o '[0-9]*$')
        [ -n "$h" ] && [ "$h" -ge "$TARGET_HEIGHT" ] || heights_ok=false
    done
    # Phase 1: a v1 Permit on each edge.
    v1_ok=true
    for log in t1 t2; do
        grep -q 'decision req=.*decision=Permit policy=v1' "$WORKDIR/$log.log" 2>/dev/null || v1_ok=false
    done
    # Phase 2: every process observed the v2 activation.
    flip_ok=true
    for log in infra t1 t2; do
        grep -q 'policy v2 activated at height' "$WORKDIR/$log.log" 2>/dev/null || flip_ok=false
    done
    # Phase 3: a v2 Deny on each edge — the fleet-wide hot reload landed.
    v2_ok=true
    for log in t1 t2; do
        grep -q 'decision req=.*decision=Deny policy=v2' "$WORKDIR/$log.log" 2>/dev/null || v2_ok=false
    done
    if $heights_ok && $v1_ok && $flip_ok && $v2_ok; then
        ok=1
        break
    fi
    sleep 1
done

[ -n "$ok" ] || fail "criteria not met within ${TIMEOUT}s"

# Height-gated atomicity: all three processes must report the SAME
# activation height for v2.
act_heights=$(for log in infra t1 t2; do
    grep -o 'policy v2 activated at height [0-9]*' "$WORKDIR/$log.log" | head -1 | grep -o '[0-9]*$'
done | sort -u | wc -l)
[ "$act_heights" -eq 1 ] || fail "v2 activation heights differ across processes"

# No process was restarted for the rollout.
for log in infra t1 t2; do
    starts=$(grep -c 'listening on' "$WORKDIR/$log.log")
    [ "$starts" -eq 1 ] || fail "$log restarted during the rollout"
done

# Convergence: the last reported state digests must agree across processes.
digests=$(for log in infra t1 t2; do
    grep -o 'digest=[0-9a-f]*' "$WORKDIR/$log.log" | tail -1
done | sort -u | wc -l)
if [ "$digests" -ne 1 ]; then
    # Digests race the sampling instant; give the slowest node a moment and
    # re-check on fresh status lines.
    sleep 3
    digests=$(for log in infra t1 t2; do
        grep -o 'digest=[0-9a-f]*' "$WORKDIR/$log.log" | tail -1
    done | sort -u | wc -l)
fi

kill $PIDS 2>/dev/null
wait 2>/dev/null
PIDS=""

if [ "$digests" -ne 1 ]; then
    echo "SMOKE FAILED: state digests did not converge" >&2
    exit 1
fi

echo "SMOKE OK: 3-process federation served v1 decisions, hot-reloaded to v2 at one height fleet-wide (permit -> deny on both edges), and converged"
exit 0
