package core

import (
	"context"
	"testing"
	"time"

	"drams/internal/blockchain"
	"drams/internal/clock"
	"drams/internal/contract"
	"drams/internal/crypto"
	"drams/internal/netsim"
	"drams/internal/xacml"
)

// nodeEnv is a single mining node with the log-match contract and three
// allowlisted identities: li, pap, analyser.
type nodeEnv struct {
	node     *blockchain.Node
	li       *crypto.Identity
	pap      *crypto.Identity
	analyser *crypto.Identity
	key      crypto.Key
}

func newNodeEnv(t *testing.T, cfg MatchConfig) *nodeEnv {
	t.Helper()
	mk := func(name string, b byte) *crypto.Identity {
		var seed [32]byte
		seed[0] = b
		copy(seed[1:], name)
		return crypto.NewIdentityFromSeed(name, seed)
	}
	env := &nodeEnv{
		li:       mk("li", 1),
		pap:      mk("pap", 2),
		analyser: mk("analyser", 3),
		key:      crypto.DeriveKey("monitor-test", "K"),
	}
	cfg.PAP = "pap"
	cfg.Analyser = "analyser"
	reg := contract.NewRegistry()
	reg.MustRegister(NewLogMatchContract(cfg))
	net := netsim.New(netsim.Config{Seed: 21})
	node, err := blockchain.NewNode(blockchain.NodeConfig{
		Name: "mon-node",
		Chain: blockchain.Config{
			Difficulty: 4,
			Identities: []crypto.PublicIdentity{env.li.Public(), env.pap.Public(), env.analyser.Public()},
			Registry:   reg,
		},
		Network:            net,
		Mine:               true,
		EmptyBlockInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	node.Start()
	t.Cleanup(func() {
		node.Stop()
		net.Close()
	})
	env.node = node
	return env
}

func (env *nodeEnv) submit(t *testing.T, id *crypto.Identity, method string, args []byte) {
	t.Helper()
	sender := blockchain.NewSender(env.node, id)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	rec, err := sender.SendAndWait(ctx, contract.Call{Contract: ContractName, Method: method, Args: args}, 1)
	if err != nil {
		t.Fatalf("submit %s: %v", method, err)
	}
	if !rec.OK {
		t.Fatalf("submit %s failed on-chain: %s", method, rec.Err)
	}
}

// sealedExchange builds four consistent records with real encrypted
// contexts so the analyser can process them.
func sealedExchange(t *testing.T, key crypto.Key, reqID string, role string, decision xacml.Decision, polDig crypto.Digest) []LogRecord {
	t.Helper()
	cipher, err := crypto.NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	req := xacml.NewRequest(reqID).Add(xacml.CatSubject, "role", xacml.String(role))
	res := xacml.Result{RequestID: reqID, Decision: decision,
		PolicyID: "root", PolicyVersion: "v1", PolicyDigest: polDig}
	seal := func(ec EncryptedContext) []byte {
		b, err := ec.Seal(cipher, reqID)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	dt := DecisionTag(key, reqID, decision)
	return []LogRecord{
		{Kind: KindPEPRequest, ReqID: reqID, Tenant: "t1", Agent: "a1",
			ReqDigest: req.Digest(), Payload: seal(EncryptedContext{Request: req})},
		{Kind: KindPDPRequest, ReqID: reqID, Tenant: "infra", Agent: "a2",
			ReqDigest: req.Digest(), Payload: seal(EncryptedContext{Request: req})},
		{Kind: KindPDPResponse, ReqID: reqID, Tenant: "infra", Agent: "a2",
			ReqDigest: req.Digest(), RespDigest: res.Digest(), DecisionTag: dt,
			PolicyVersion: "v1", PolicyDigest: polDig,
			Payload: seal(EncryptedContext{Request: req, Result: &res})},
		{Kind: KindPEPResponse, ReqID: reqID, Tenant: "t1", Agent: "a1",
			ReqDigest: req.Digest(), RespDigest: res.Digest(), DecisionTag: dt, EnforcedTag: dt,
			Payload: seal(EncryptedContext{Request: req, Result: &res, Enforced: decision})},
	}
}

func monitorPolicy() *xacml.PolicySet {
	permit := &xacml.Rule{ID: "permit-doctor", Effect: xacml.EffectPermit,
		Target: xacml.TargetMatching(xacml.CatSubject, "role", xacml.String("doctor"))}
	deny := &xacml.Rule{ID: "deny", Effect: xacml.EffectDeny}
	return &xacml.PolicySet{ID: "root", Version: "v1", Alg: xacml.DenyUnlessPermit,
		Items: []xacml.PolicyItem{{Policy: &xacml.Policy{ID: "p", Version: "1",
			Alg: xacml.FirstApplicable, Rules: []*xacml.Rule{permit, deny}}}}}
}

func TestMonitorSeesMatchedExchange(t *testing.T) {
	env := newNodeEnv(t, MatchConfig{TimeoutBlocks: 100, RequireVerdict: false})
	mon := NewMonitor(env.node, clock.System{})
	mon.Start()
	defer mon.Stop()

	polDig := crypto.Sum([]byte("policy"))
	pa := PolicyAnnouncement{Version: "v1", Digest: polDig, Active: true}
	env.submit(t, env.pap, MethodPolicy, pa.Encode())

	mon.TrackSubmission("m-1")
	for _, rec := range sealedExchange(t, env.key, "m-1", "doctor", xacml.Permit, polDig) {
		env.submit(t, env.li, MethodLog, rec.Encode())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := mon.WaitForMatched(ctx, "m-1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := mon.Matched("m-1"); !ok {
		t.Fatal("Matched() lost the request")
	}
	st := mon.Stats()
	if st.LogsSeen < 4 || st.Matched != 1 || st.AlertsSeen != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// WaitForMatched returns immediately for an already-matched request.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	if err := mon.WaitForMatched(ctx2, "m-1"); err != nil {
		t.Fatal(err)
	}
}

func TestMonitorAlertFlow(t *testing.T) {
	env := newNodeEnv(t, MatchConfig{TimeoutBlocks: 100, RequireVerdict: false})
	mon := NewMonitor(env.node, clock.System{})
	mon.Start()
	defer mon.Stop()

	var handled []Alert
	done := make(chan struct{}, 4)
	mon.OnAlert(func(a Alert) {
		handled = append(handled, a)
		done <- struct{}{}
	})

	polDig := crypto.Sum([]byte("policy"))
	env.submit(t, env.pap, MethodPolicy, PolicyAnnouncement{Version: "v1", Digest: polDig, Active: true}.Encode())

	mon.TrackSubmission("bad-1")
	recs := sealedExchange(t, env.key, "bad-1", "doctor", xacml.Permit, polDig)
	// Tamper the pdp.request digest → M1.
	recs[1].ReqDigest = crypto.Sum([]byte("evil"))
	env.submit(t, env.li, MethodLog, recs[0].Encode())
	env.submit(t, env.li, MethodLog, recs[1].Encode())

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	alert, err := mon.WaitForAlert(ctx, "bad-1", AlertRequestTampered)
	if err != nil {
		t.Fatal(err)
	}
	if alert.ReqID != "bad-1" {
		t.Fatalf("alert = %+v", alert)
	}
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("OnAlert handler not invoked")
	}
	// Alerts are recorded and queryable.
	if got := mon.AlertsFor("bad-1"); len(got) != 1 || got[0].Type != AlertRequestTampered {
		t.Fatalf("AlertsFor = %v", got)
	}
	if got := mon.Alerts(); len(got) != 1 {
		t.Fatalf("Alerts = %v", got)
	}
	// Detection latency was measured for the tracked request.
	if mon.Stats().DetectionLatencyMs.Count != 1 {
		t.Fatalf("latency count = %d", mon.Stats().DetectionLatencyMs.Count)
	}
	// WaitForAlert on an already-seen alert returns immediately.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	if _, err := mon.WaitForAlert(ctx2, "bad-1", AlertRequestTampered); err != nil {
		t.Fatal(err)
	}
}

func TestMonitorWaitCancellation(t *testing.T) {
	env := newNodeEnv(t, MatchConfig{TimeoutBlocks: 100})
	mon := NewMonitor(env.node, clock.System{})
	mon.Start()
	defer mon.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := mon.WaitForAlert(ctx, "never", AlertRequestTampered); err == nil {
		t.Fatal("expected context error")
	}
	if err := mon.WaitForMatched(ctx, "never"); err == nil {
		t.Fatal("expected context error")
	}
}

func TestAnalyserProducesVerdictsAndM5(t *testing.T) {
	env := newNodeEnv(t, MatchConfig{TimeoutBlocks: 100, RequireVerdict: true})
	mon := NewMonitor(env.node, clock.System{})
	mon.Start()
	defer mon.Stop()

	ps := monitorPolicy()
	an, err := NewAnalyser("analyser", env.node, env.analyser, env.key)
	if err != nil {
		t.Fatal(err)
	}
	an.LoadPolicy(ps)
	an.Start()
	defer an.Stop()

	env.submit(t, env.pap, MethodPolicy, PolicyAnnouncement{Version: "v1", Digest: ps.Digest(), Active: true}.Encode())
	if err := an.VerifyPolicyAnchor(); err != nil {
		t.Fatalf("anchor verification: %v", err)
	}

	// Honest exchange: doctor → Permit. Analyser agrees; Matched fires.
	for _, rec := range sealedExchange(t, env.key, "ok-1", "doctor", xacml.Permit, ps.Digest()) {
		env.submit(t, env.li, MethodLog, rec.Encode())
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := mon.WaitForMatched(ctx, "ok-1"); err != nil {
		t.Fatal(err)
	}
	if an.Stats().VerdictsSubmitted == 0 {
		t.Fatal("analyser produced no verdicts")
	}
	if an.Stats().MismatchesFound != 0 {
		t.Fatal("honest exchange flagged")
	}

	// Compromised PDP: doctor → Deny (wrong). Analyser disagrees → M5.
	for _, rec := range sealedExchange(t, env.key, "bad-1", "doctor", xacml.Deny, ps.Digest()) {
		env.submit(t, env.li, MethodLog, rec.Encode())
	}
	if _, err := mon.WaitForAlert(ctx, "bad-1", AlertDecisionIncorrect); err != nil {
		t.Fatal(err)
	}
	if an.Stats().MismatchesFound == 0 {
		t.Fatal("analyser did not count the mismatch")
	}
	// Direct expected-decision API.
	req := xacml.NewRequest("x").Add(xacml.CatSubject, "role", xacml.String("doctor"))
	d, err := an.ExpectedDecision(req)
	if err != nil || d != xacml.Permit {
		t.Fatalf("ExpectedDecision = %s, %v", d, err)
	}
}

func TestAnalyserWrongKeyCannotVerdict(t *testing.T) {
	env := newNodeEnv(t, MatchConfig{TimeoutBlocks: 8, RequireVerdict: true})
	mon := NewMonitor(env.node, clock.System{})
	mon.Start()
	defer mon.Stop()

	ps := monitorPolicy()
	wrongKey := crypto.DeriveKey("wrong", "K")
	an, err := NewAnalyser("analyser", env.node, env.analyser, wrongKey)
	if err != nil {
		t.Fatal(err)
	}
	an.LoadPolicy(ps)
	an.Start()
	defer an.Stop()

	env.submit(t, env.pap, MethodPolicy, PolicyAnnouncement{Version: "v1", Digest: ps.Digest(), Active: true}.Encode())
	for _, rec := range sealedExchange(t, env.key, "nk-1", "doctor", xacml.Permit, ps.Digest()) {
		env.submit(t, env.li, MethodLog, rec.Encode())
	}
	// The analyser cannot decrypt the context → no verdict → M5 liveness
	// alert after the timeout window.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := mon.WaitForAlert(ctx, "nk-1", AlertVerdictMissing); err != nil {
		t.Fatal(err)
	}
	if an.Stats().Failures == 0 {
		t.Fatal("decrypt failures not counted")
	}
}

func TestAnalyserNoPolicy(t *testing.T) {
	env := newNodeEnv(t, MatchConfig{TimeoutBlocks: 100})
	an, err := NewAnalyser("analyser", env.node, env.analyser, env.key)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := an.ExpectedDecision(xacml.NewRequest("x")); err == nil {
		t.Fatal("expected error without a policy")
	}
	if err := an.VerifyPolicyAnchor(); err == nil {
		t.Fatal("expected anchor error without a policy")
	}
	// With a policy but no anchor on-chain the verification still fails.
	an.LoadPolicy(monitorPolicy())
	if err := an.VerifyPolicyAnchor(); err == nil {
		t.Fatal("expected error with no anchor")
	}
}

func TestAnalyserDetectsWrongAnchoredPolicy(t *testing.T) {
	env := newNodeEnv(t, MatchConfig{TimeoutBlocks: 100})
	an, err := NewAnalyser("analyser", env.node, env.analyser, env.key)
	if err != nil {
		t.Fatal(err)
	}
	an.LoadPolicy(monitorPolicy())
	// PAP anchors a different digest: the analyser must refuse its policy.
	env.submit(t, env.pap, MethodPolicy,
		PolicyAnnouncement{Version: "v1", Digest: crypto.Sum([]byte("other")), Active: true}.Encode())
	if err := an.VerifyPolicyAnchor(); err == nil {
		t.Fatal("analyser accepted a policy that differs from the anchor")
	}
}
