package sim

import (
	"testing"
	"time"

	"fix/internal/netsim"
)

func TestUnpinned(t *testing.T) {
	cfg := netsim.Config{Synchronous: true} // want "literal without an explicit Seed"
	_ = cfg
}

func TestClockSeed(t *testing.T) {
	cfg := netsim.Config{Seed: time.Now().UnixNano()} // want "Seed derived from time.Now"
	_ = cfg
}
