package blockchain

import (
	"fmt"
	"testing"

	"drams/internal/crypto"
)

// applyTestChains builds a parallel-apply chain and a sequential baseline
// with identical config, applies the same blocks to both, and returns them.
func applyTestChains(t *testing.T, ids ...*crypto.Identity) (*Chain, *Chain) {
	t.Helper()
	parCfg := testChainConfig(t, ids...)
	// Force a real pool even on a single-core test host.
	parCfg.ApplyWorkers = 4
	seqCfg := testChainConfig(t, ids...)
	seqCfg.SequentialApply = true
	return NewChain(parCfg), NewChain(seqCfg)
}

func applyToBoth(t *testing.T, par, seq *Chain, txs []Transaction) {
	t.Helper()
	parHead, _ := par.Head()
	b := mineChild(t, par, parHead, txs...)
	if err := par.AddBlock(b); err != nil {
		t.Fatalf("parallel chain: %v", err)
	}
	if err := seq.AddBlock(b); err != nil {
		t.Fatalf("sequential chain: %v", err)
	}
}

// Disjoint-key transactions from many senders must commit from the
// speculative pass and produce the state a sequential replica computes.
func TestParallelApplyDisjointMatchesSequential(t *testing.T) {
	var ids []*crypto.Identity
	for i := 0; i < 8; i++ {
		ids = append(ids, testIdentity(t, fmt.Sprintf("sender-%d", i), byte(i+1)))
	}
	par, seq := applyTestChains(t, ids...)

	for round := 0; round < 3; round++ {
		var txs []Transaction
		for i, id := range ids {
			for n := 0; n < 4; n++ {
				nonce := uint64(round*4 + n + 1)
				tx, err := NewTransaction(id, nonce,
					putCall(fmt.Sprintf("k/%d/%d/%d", i, round, n), fmt.Sprintf("v%d", n)))
				if err != nil {
					t.Fatal(err)
				}
				txs = append(txs, tx)
			}
		}
		applyToBoth(t, par, seq, txs)
	}

	if par.StateDigest() != seq.StateDigest() {
		t.Fatal("parallel apply diverged from sequential on disjoint keys")
	}
	st := par.ApplyStats()
	if st.ParallelBlocks == 0 {
		t.Fatalf("parallel path never taken: %+v", st)
	}
	if st.ConflictTxs != 0 {
		t.Fatalf("disjoint workload reported %d conflicts", st.ConflictTxs)
	}
}

// Transactions fighting over the same keys (KVContract ownership: first
// writer owns the key, later writers from other senders must fail) force
// the conflict path; the outcome must still match sequential execution
// exactly — including which transactions failed.
func TestParallelApplyConflictsMatchSequential(t *testing.T) {
	var ids []*crypto.Identity
	for i := 0; i < 8; i++ {
		ids = append(ids, testIdentity(t, fmt.Sprintf("sender-%d", i), byte(i+1)))
	}
	par, seq := applyTestChains(t, ids...)

	// Every sender writes the SAME key: sender-0 (first in block order)
	// wins ownership; all later writes must fail deterministically.
	var txs []Transaction
	for _, id := range ids {
		tx, err := NewTransaction(id, 1, putCall("contested", "mine-"+id.Name()))
		if err != nil {
			t.Fatal(err)
		}
		txs = append(txs, tx)
	}
	applyToBoth(t, par, seq, txs)

	if par.StateDigest() != seq.StateDigest() {
		t.Fatal("parallel apply diverged from sequential under conflicts")
	}
	st := par.ApplyStats()
	if st.ConflictTxs == 0 {
		t.Fatalf("contested workload reported no conflicts: %+v", st)
	}
	// Receipts must agree tx by tx (the first writer succeeded, the rest
	// failed with the ownership error on both replicas).
	okCount := 0
	for i := range txs {
		pr, _, err := par.Receipt(txs[i].ID())
		if err != nil {
			t.Fatal(err)
		}
		sr, _, err := seq.Receipt(txs[i].ID())
		if err != nil {
			t.Fatal(err)
		}
		if pr.OK != sr.OK || pr.Err != sr.Err {
			t.Fatalf("tx %d receipts diverge: parallel %+v, sequential %+v", i, pr, sr)
		}
		if pr.OK {
			okCount++
		}
	}
	if okCount != 1 {
		t.Fatalf("%d owners of a contested key, want exactly 1", okCount)
	}
}

// A prefix scan (Keys) must conflict with an earlier write under the
// scanned prefix: the anchor contract's ListAnchors-style state is read
// through Keys, so this guards the prefix half of the conflict rule.
func TestTrackingStatePrefixConflict(t *testing.T) {
	parent := NewChain(testChainConfig(t)).state
	ts := newTrackingState(parent)
	ts.Keys("kv/data/")
	if !ts.conflictsWith(map[string]struct{}{"kv/data/x": {}}) {
		t.Fatal("prefix scan did not conflict with write under prefix")
	}
	if ts.conflictsWith(map[string]struct{}{"anchor/data/x": {}}) {
		t.Fatal("prefix scan conflicted with unrelated write")
	}

	ts2 := newTrackingState(parent)
	ts2.Get("kv/owner/a")
	if !ts2.conflictsWith(map[string]struct{}{"kv/owner/a": {}}) {
		t.Fatal("exact read did not conflict with same-key write")
	}
	if ts2.conflictsWith(map[string]struct{}{"kv/owner/b": {}}) {
		t.Fatal("exact read conflicted with different key")
	}
}
