package blockchain

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"drams/internal/netsim"
	"drams/internal/obs"
)

// TestReadinessTransitionOnRejoin pins the health/readiness lifecycle of a
// rejoining member: once it has probed a peer's head it knows how far
// behind it is and /readyz answers 503 while the batched catch-up is
// outstanding; within one sync round of completion it answers 200.
func TestReadinessTransitionOnRejoin(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	net := netsim.New(netsim.Config{Seed: 5})
	defer net.Close()
	peers := []string{"src", "joiner"}
	src, err := NewNode(NodeConfig{Name: "src", Chain: testChainConfig(t, alice), Network: net, Peers: peers})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Stop()
	parent := src.chain.Genesis()
	const length = 20
	for i := 1; i <= length; i++ {
		tx, err := NewTransaction(alice, uint64(i), putCall(fmt.Sprintf("k%d", i), "v"))
		if err != nil {
			t.Fatal(err)
		}
		b := mineChild(t, src.chain, parent, tx)
		if err := src.chain.AddBlock(b); err != nil {
			t.Fatal(err)
		}
		parent = b.Hash()
	}

	joiner, err := NewNode(NodeConfig{Name: "joiner", Chain: testChainConfig(t, alice), Network: net,
		Peers: peers, SyncBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer joiner.Stop()

	const lag = 2
	health := obs.NewHealth()
	health.AddReady("chain", func() error {
		if joiner.CaughtUp(lag) {
			return nil
		}
		return fmt.Errorf("syncing: height %d trails best seen %d", joiner.chain.Height(), joiner.BestSeenHeight())
	})
	srv := httptest.NewServer(obs.Handler(obs.NewGatherer(nil), health))
	defer srv.Close()
	readyz := func() (int, string) {
		resp, err := http.Get(srv.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		buf := make([]byte, 4096)
		n, _ := resp.Body.Read(buf)
		return resp.StatusCode, string(buf[:n])
	}

	// Before any peer contact the node has no evidence it is behind:
	// readiness is vacuously true (a lone bootstrap member must serve).
	if code, _ := readyz(); code != http.StatusOK {
		t.Fatalf("pre-contact /readyz = %d, want 200", code)
	}

	// Probing the peer's head reveals the gap: not ready while behind.
	h, err := joiner.ProbeHead("src")
	if err != nil {
		t.Fatal(err)
	}
	if h != length {
		t.Fatalf("probed head %d, want %d", h, length)
	}
	if code, body := readyz(); code != http.StatusServiceUnavailable || !strings.Contains(body, "syncing") {
		t.Fatalf("mid-catch-up /readyz = %d %q, want 503 syncing", code, body)
	}

	// One batched sync round brings the chain level with the peer; the
	// very next readiness probe flips to 200.
	if err := joiner.SyncFrom("src"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, body := readyz()
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("post-sync /readyz stuck at %d %q", code, body)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if joiner.chain.Height() != length {
		t.Fatalf("joiner height %d after sync, want %d", joiner.chain.Height(), length)
	}
}
