// bench_test.go regenerates every experiment table/series of DESIGN.md §2
// (one Benchmark per experiment E1–E8) plus micro-benchmarks of the
// building blocks. Run:
//
//	go test -bench=. -benchmem
//
// The E-benches execute a full experiment driver per iteration with reduced
// default parameters and publish the headline numbers via b.ReportMetric;
// cmd/drams-bench runs the full-size sweeps and prints the complete tables.
package drams_test

import (
	"context"
	"fmt"
	"strconv"
	"testing"
	"time"

	"drams"
	"drams/internal/analysis"
	"drams/internal/attack"
	"drams/internal/blockchain"
	"drams/internal/contract"
	"drams/internal/core"
	"drams/internal/crypto"
	"drams/internal/experiment"
	"drams/internal/logger"
	"drams/internal/merkle"
	"drams/internal/xacml"
)

// metric extracts a numeric cell from an experiment table by row label
// prefix and column name; returns -1 when absent.
func metric(tab experiment.Table, rowPrefix, col string) float64 {
	ci := -1
	for i, h := range tab.Header {
		if h == col {
			ci = i
		}
	}
	if ci < 0 {
		return -1
	}
	for _, row := range tab.Rows {
		if len(row) > ci && len(row[0]) >= len(rowPrefix) && row[0][:len(rowPrefix)] == rowPrefix {
			v, err := strconv.ParseFloat(row[ci], 64)
			if err != nil {
				return -1
			}
			return v
		}
	}
	return -1
}

func BenchmarkE1EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiment.RunE1(experiment.E1Params{Requests: 12, Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range tab.Rows {
			if row[0] == "match (on-chain) p50 (ms)" {
				if v, err := strconv.ParseFloat(row[1], 64); err == nil {
					b.ReportMetric(v, "match-p50-ms")
				}
			}
		}
	}
}

func BenchmarkE2LogSizeLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiment.RunE2(experiment.E2Params{
			Sizes: []int{64, 16384}, Difficulties: []uint8{8}, Samples: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(metric(tab, "8", "p50_ms"), "small-log-p50-ms")
	}
}

func BenchmarkE3PoWTuning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiment.RunE3(experiment.E3Params{Difficulties: []uint8{8, 14}, Blocks: 4})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(metric(tab, "14", "mean_block_ms"), "d14-block-ms")
	}
}

func BenchmarkE4HybridTradeoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiment.RunE4(experiment.E4Params{Writes: 64, BatchSizes: []int{16}, ValueSize: 256})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(metric(tab, "hybrid-16", "p50_ms"), "hybrid-write-p50-ms")
		b.ReportMetric(metric(tab, "pure-chain", "p50_ms"), "chain-write-p50-ms")
	}
}

func BenchmarkE5DetectionMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiment.RunE5(experiment.E5Params{Trials: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(metric(tab, "A3", "mean_latency_ms"), "a3-detect-ms")
	}
}

func BenchmarkE6MonitorOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiment.RunE6(experiment.E6Params{Requests: 24, Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(metric(tab, "off", "p50_ms"), "off-p50-ms")
		b.ReportMetric(metric(tab, "async", "p50_ms"), "async-p50-ms")
	}
}

func BenchmarkE7Analyser(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiment.RunE7(experiment.E7Params{RuleCounts: []int{10, 100}, Requests: 100})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(metric(tab, "100", "expected_us_per_req"), "100rules-us-per-req")
	}
}

func BenchmarkE8FederationScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiment.RunE8(experiment.E8Params{CloudCounts: []int{2, 4}, Requests: 12})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(metric(tab, "4", "throughput_req_s"), "4clouds-req-s")
	}
}

func BenchmarkAB1TimeoutWindow(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiment.RunAB1(experiment.AB1Params{TimeoutBlocks: []uint64{10}, Trials: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(metric(tab, "10", "detect_mean_ms"), "d10-detect-ms")
	}
}

func BenchmarkAB2AnalyserAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunAB2(experiment.AB2Params{Trials: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAB3SubmissionModes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiment.RunAB3(experiment.AB3Params{Requests: 8})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(metric(tab, "async", "p50_ms"), "async-p50-ms")
	}
}

// --- micro-benchmarks of the building blocks ---

func benchPolicyAndRequests(n int) (*xacml.PolicySet, []*xacml.Request) {
	gen := xacml.NewGenerator(uint64(n), xacml.GenParams{
		Rules: n, Policies: 1, Attrs: 4, ValuesPerAttr: 4, MaxCondDepth: 2,
	})
	ps := gen.PolicySet("bench", "v1")
	reqs := make([]*xacml.Request, 256)
	for i := range reqs {
		reqs[i] = gen.Request(fmt.Sprintf("r%d", i))
	}
	return ps, reqs
}

func BenchmarkPDPEvaluate100Rules(b *testing.B) {
	ps, reqs := benchPolicyAndRequests(100)
	pdp := xacml.NewPDP(ps)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pdp.Evaluate(reqs[i%len(reqs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPDPEvaluate1000Rules / ...Cached1000Rules are the decision-cache
// pair: the same repeated working set evaluated from scratch versus through
// the lock-striped cache (after the first cycle every request is a hit).
func BenchmarkPDPEvaluate1000Rules(b *testing.B) {
	ps, reqs := benchPolicyAndRequests(1000)
	pdp := xacml.NewPDP(ps)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pdp.Evaluate(reqs[i%len(reqs)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPDPEvaluateCached1000Rules(b *testing.B) {
	ps, reqs := benchPolicyAndRequests(1000)
	pdp := xacml.NewCachedPDP(ps, 1024)
	for _, r := range reqs { // warm the cache
		if _, err := pdp.Evaluate(r); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pdp.Evaluate(reqs[i%len(reqs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// benchVerifierBatch builds a block-sized batch of signed transactions and
// a registry accepting them.
func benchVerifierBatch(b *testing.B, n int) ([]blockchain.Transaction, *blockchain.IdentityRegistry) {
	b.Helper()
	var seed [32]byte
	seed[0] = 0x77
	id := crypto.NewIdentityFromSeed("bench-verify", seed)
	reg := blockchain.NewIdentityRegistry(id.Public())
	txs := make([]blockchain.Transaction, n)
	for i := range txs {
		call := contract.Call{Contract: "kv", Method: "put", Args: []byte(fmt.Sprintf(`{"key":"k%d"}`, i))}
		tx, err := blockchain.NewTransaction(id, uint64(i+1), call)
		if err != nil {
			b.Fatal(err)
		}
		txs[i] = tx
	}
	return txs, reg
}

// BenchmarkBlockSigVerifySequential256 is the pre-pipeline baseline: one
// inline ed25519 check per transaction, as block validation used to do.
func BenchmarkBlockSigVerifySequential256(b *testing.B) {
	txs, reg := benchVerifierBatch(b, 256)
	v := blockchain.NewTxVerifier(reg, blockchain.VerifierConfig{Sequential: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := v.VerifyAll(txs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBlockSigVerifyPipelineCold256 measures the worker-pool fanout
// with the verified-tx cache disabled (every signature checked each pass).
func BenchmarkBlockSigVerifyPipelineCold256(b *testing.B) {
	txs, reg := benchVerifierBatch(b, 256)
	v := blockchain.NewTxVerifier(reg, blockchain.VerifierConfig{CacheSize: -1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := v.VerifyAll(txs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBlockSigVerifyPipelineWarm256 measures block validation in the
// pipeline's steady state: every transaction was already verified at
// mempool admission, so validation is pure verified-tx LRU hits.
func BenchmarkBlockSigVerifyPipelineWarm256(b *testing.B) {
	txs, reg := benchVerifierBatch(b, 256)
	v := blockchain.NewTxVerifier(reg, blockchain.VerifierConfig{CacheSize: 1024})
	if err := v.VerifyAll(txs); err != nil { // admission pass
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := v.VerifyAll(txs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyserExpected100Rules(b *testing.B) {
	ps, reqs := benchPolicyAndRequests(100)
	compiled := analysis.Compile(ps)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = compiled.ExpectedSimple(reqs[i%len(reqs)])
	}
}

func BenchmarkPolicyCompile100Rules(b *testing.B) {
	ps, _ := benchPolicyAndRequests(100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = analysis.Compile(ps)
	}
}

func BenchmarkRequestDigest(b *testing.B) {
	req := xacml.NewRequest("r").
		Add(xacml.CatSubject, "role", xacml.String("doctor")).
		Add(xacml.CatResource, "id", xacml.Int(42)).
		Add(xacml.CatAction, "op", xacml.String("read"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = req.Digest()
	}
}

func BenchmarkMerkleBuild1024(b *testing.B) {
	leaves := make([][]byte, 1024)
	for i := range leaves {
		leaves[i] = []byte(fmt.Sprintf("leaf-%d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := merkle.Build(leaves); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMerkleProveVerify1024(b *testing.B) {
	leaves := make([][]byte, 1024)
	for i := range leaves {
		leaves[i] = []byte(fmt.Sprintf("leaf-%d", i))
	}
	tree, err := merkle.Build(leaves)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx := i % 1024
		proof, err := tree.Prove(idx)
		if err != nil {
			b.Fatal(err)
		}
		if !merkle.Verify(tree.Root(), leaves[idx], proof) {
			b.Fatal("verify failed")
		}
	}
}

func BenchmarkCipherSealOpen4KiB(b *testing.B) {
	cipher, err := crypto.NewCipher(crypto.DeriveKey("bench", "K"))
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 4096)
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ct, err := cipher.Encrypt(payload, []byte("req"))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := cipher.Decrypt(ct, []byte("req")); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMineDifficulty12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		blk := &blockchain.Block{Header: blockchain.BlockHeader{
			Height:     uint64(i + 1),
			PrevHash:   crypto.Sum([]byte{byte(i)}),
			Difficulty: 12,
			Miner:      "bench",
		}}
		if !blockchain.Mine(context.Background(), blk, uint64(i)*7919) {
			b.Fatal("cancelled")
		}
	}
}

func BenchmarkDecisionTag(b *testing.B) {
	key := crypto.DeriveKey("bench", "K")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = core.DecisionTag(key, "req-1", xacml.Permit)
	}
}

func BenchmarkRewriteProbability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = attack.RewriteProbability(0.3, 6)
	}
}

// BenchmarkMonitoredRequest measures one full monitored exchange: PEP →
// PDP → enforcement, all four logs mined, analyser verdict mined, Matched
// event observed.
func BenchmarkMonitoredRequest(b *testing.B) {
	dep, err := experiment.NewStandardDeployment(2, logger.SubmitAsync, false, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer dep.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := experiment.StandardRequest(dep, i)
		if _, err := dep.Request("tenant-1", req); err != nil {
			b.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		err := dep.WaitForMatched(ctx, req.ID)
		cancel()
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUnmonitoredRequest is the E6 baseline counterpart.
func BenchmarkUnmonitoredRequest(b *testing.B) {
	dep, err := experiment.NewStandardDeployment(2, logger.SubmitAsync, true, 0)
	if err != nil {
		b.Fatal(err)
	}
	defer dep.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := experiment.StandardRequest(dep, i)
		if _, err := dep.Request("tenant-1", req); err != nil {
			b.Fatal(err)
		}
	}
}

var benchSink drams.Enforcement

// BenchmarkPEPDecideAsyncProbes isolates the PEP hot path with async
// logging attached (the per-request overhead DRAMS adds in its default
// configuration).
func BenchmarkPEPDecideAsyncProbes(b *testing.B) {
	dep, err := experiment.NewStandardDeployment(2, logger.SubmitAsync, false, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	defer dep.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := experiment.StandardRequest(dep, i)
		enf, err := dep.Request("tenant-1", req)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = enf
	}
}
