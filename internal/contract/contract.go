// Package contract implements the deterministic smart-contract engine that
// runs on the DRAMS private blockchain (paper §II: "Smart-contract
// blockchain: ... storing and comparing logs, using expressly devised
// algorithms").
//
// Contracts are ordinary Go values implementing the Contract interface. They
// execute only inside block application, must be deterministic (no wall
// clock, no randomness, no I/O — all inputs come from the transaction and the
// block context), and communicate with the off-chain world exclusively
// through emitted Events, which the blockchain node publishes to subscribers
// (the Logging Interfaces) once the containing block is part of the best
// chain.
package contract

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"drams/internal/crypto"
)

var (
	// ErrUnknownContract is returned when a call names an unregistered
	// contract.
	ErrUnknownContract = errors.New("contract: unknown contract")
	// ErrUnknownMethod is returned by contracts for unsupported methods.
	ErrUnknownMethod = errors.New("contract: unknown method")
	// ErrBadArgs is returned by contracts for malformed arguments.
	ErrBadArgs = errors.New("contract: malformed arguments")
)

// Call is the payload of a blockchain transaction: an invocation of a method
// on a named contract.
type Call struct {
	Contract string          `json:"contract"`
	Method   string          `json:"method"`
	Args     json.RawMessage `json:"args,omitempty"`
}

// Encode canonically serialises the call for hashing.
func (c Call) Encode() []byte {
	b, err := json.Marshal(c)
	if err != nil {
		// Call contains only marshalable fields; this cannot happen.
		panic(fmt.Sprintf("contract: encode call: %v", err))
	}
	return b
}

// CallCtx carries deterministic block context into contract execution.
type CallCtx struct {
	// Height of the block containing the transaction.
	Height uint64
	// BlockTime is the miner-declared block timestamp. It is consensus
	// data, not wall-clock truth.
	BlockTime time.Time
	// TxID identifies the executing transaction.
	TxID crypto.Digest
	// Caller is the verified component identity name that signed the
	// transaction.
	Caller string
	// Cross gives the contract read-only access to other contracts'
	// committed state (earlier transactions of the same block included).
	// Set by the engine; nil when a contract is executed standalone, so
	// contracts must treat cross-reads as optional.
	Cross CrossReader
}

// CrossReader is deterministic read-only access to another contract's
// state namespace. Reads observe the block-application state: everything
// committed up to (but not including) the currently executing transaction
// of the same block, which is identical on every replica.
type CrossReader interface {
	// Read returns the value stored under key in the named contract's
	// namespace.
	Read(contractName, key string) ([]byte, bool)
	// ReadKeys lists the named contract's keys with the given prefix,
	// sorted.
	ReadKeys(contractName, prefix string) []string
}

// crossView implements CrossReader over the engine's root state.
type crossView struct{ st StateDB }

func (c crossView) Read(contractName, key string) ([]byte, bool) {
	return c.st.Get(contractName + "/" + key)
}

func (c crossView) ReadKeys(contractName, prefix string) []string {
	full := c.st.Keys(contractName + "/" + prefix)
	out := make([]string, len(full))
	for i, k := range full {
		out[i] = strings.TrimPrefix(k, contractName+"/")
	}
	return out
}

// CrossOver returns a CrossReader over a root (un-namespaced) state — the
// same view the engine hands contracts at execution time. Off-chain code and
// tests use it to run contract read helpers against a state snapshot.
func CrossOver(st StateDB) CrossReader { return crossView{st: st} }

// Event is an on-chain occurrence published to off-chain subscribers.
type Event struct {
	Contract string          `json:"contract"`
	Type     string          `json:"type"`
	Payload  json.RawMessage `json:"payload,omitempty"`
	Height   uint64          `json:"height"`
	TxID     crypto.Digest   `json:"txId"`
}

// StateDB is the contract's view of persistent on-chain state. Keys are
// namespaced by contract name by the engine, so contracts cannot read or
// write each other's state.
type StateDB interface {
	// Get returns the stored value and whether it exists.
	Get(key string) ([]byte, bool)
	// Set stores value under key.
	Set(key string, value []byte)
	// Delete removes key.
	Delete(key string)
	// Keys returns all keys with the given prefix, sorted.
	Keys(prefix string) []string
}

// Contract is deterministic on-chain logic.
type Contract interface {
	// Name is the address under which calls are routed.
	Name() string
	// Execute applies one call. Returned events are published when the
	// containing block joins the best chain. An error aborts only this
	// transaction (its state writes are discarded), not the block.
	Execute(ctx CallCtx, st StateDB, call Call) ([]Event, error)
}

// BlockHook is implemented by contracts that run logic at every block
// boundary (e.g. the log-match contract uses it to fire timeout alerts).
// OnBlock runs after all transactions in the block have executed.
type BlockHook interface {
	OnBlock(height uint64, blockTime time.Time, st StateDB) []Event
}

// Registry maps contract names to implementations. Registration happens at
// node construction; the registry is immutable afterwards, so lookups are
// lock-free.
type Registry struct {
	mu        sync.RWMutex
	contracts map[string]Contract
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{contracts: make(map[string]Contract)}
}

// Register adds a contract; registering a duplicate name is an error.
func (r *Registry) Register(c Contract) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.contracts[c.Name()]; ok {
		return fmt.Errorf("contract: register %q: already registered", c.Name())
	}
	r.contracts[c.Name()] = c
	return nil
}

// MustRegister registers and panics on duplicates; for wiring code where a
// duplicate is a programming error.
func (r *Registry) MustRegister(c Contract) {
	if err := r.Register(c); err != nil {
		panic(err)
	}
}

// Get looks up a contract by name.
func (r *Registry) Get(name string) (Contract, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.contracts[name]
	return c, ok
}

// Names lists registered contracts, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.contracts))
	for n := range r.contracts {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// State is the canonical StateDB implementation: an in-memory map with
// cloning (for fork execution) and nested overlay transactions (so a failed
// contract call rolls back cleanly).
type State struct {
	mu   sync.RWMutex
	data map[string][]byte
}

// NewState returns an empty state.
func NewState() *State {
	return &State{data: make(map[string][]byte)}
}

// Get implements StateDB.
func (s *State) Get(key string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.data[key]
	if !ok {
		return nil, false
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, true
}

// Set implements StateDB.
func (s *State) Set(key string, value []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := make([]byte, len(value))
	copy(cp, value)
	s.data[key] = cp
}

// Delete implements StateDB.
func (s *State) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.data, key)
}

// Keys implements StateDB.
func (s *State) Keys(prefix string) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []string
	for k := range s.data {
		if strings.HasPrefix(k, prefix) {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the number of stored keys.
func (s *State) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// Clone returns a deep copy; used when executing a fork branch.
func (s *State) Clone() *State {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c := &State{data: make(map[string][]byte, len(s.data))}
	for k, v := range s.data {
		cp := make([]byte, len(v))
		copy(cp, v)
		c.data[k] = cp
	}
	return c
}

// Digest returns a deterministic digest over the full state, used by tests
// to assert replica convergence.
func (s *State) Digest() crypto.Digest {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.data))
	for k := range s.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	chunks := make([][]byte, 0, 2*len(keys))
	for _, k := range keys {
		chunks = append(chunks, []byte(k), s.data[k])
	}
	return crypto.SumAll(chunks...)
}

// namespaced prefixes all keys with a contract name so contracts are
// isolated from each other.
type namespaced struct {
	inner  StateDB
	prefix string
}

// Namespace wraps st so that all keys are transparently prefixed.
func Namespace(st StateDB, contractName string) StateDB {
	return &namespaced{inner: st, prefix: contractName + "/"}
}

func (n *namespaced) Get(key string) ([]byte, bool) { return n.inner.Get(n.prefix + key) }
func (n *namespaced) Set(key string, value []byte)  { n.inner.Set(n.prefix+key, value) }
func (n *namespaced) Delete(key string)             { n.inner.Delete(n.prefix + key) }
func (n *namespaced) Keys(prefix string) []string {
	full := n.inner.Keys(n.prefix + prefix)
	out := make([]string, len(full))
	for i, k := range full {
		out[i] = strings.TrimPrefix(k, n.prefix)
	}
	return out
}

// overlay is a transactional view: writes are buffered and only applied to
// the parent on Commit, so a failed contract call leaves no trace.
type overlay struct {
	parent  StateDB
	writes  map[string][]byte
	deletes map[string]bool
}

// NewOverlay returns a transactional overlay over parent.
func NewOverlay(parent StateDB) *overlay {
	return &overlay{parent: parent, writes: make(map[string][]byte), deletes: make(map[string]bool)}
}

func (o *overlay) Get(key string) ([]byte, bool) {
	if o.deletes[key] {
		return nil, false
	}
	if v, ok := o.writes[key]; ok {
		out := make([]byte, len(v))
		copy(out, v)
		return out, true
	}
	return o.parent.Get(key)
}

func (o *overlay) Set(key string, value []byte) {
	delete(o.deletes, key)
	cp := make([]byte, len(value))
	copy(cp, value)
	o.writes[key] = cp
}

func (o *overlay) Delete(key string) {
	delete(o.writes, key)
	o.deletes[key] = true
}

func (o *overlay) Keys(prefix string) []string {
	set := make(map[string]bool)
	for _, k := range o.parent.Keys(prefix) {
		set[k] = true
	}
	for k := range o.writes {
		if strings.HasPrefix(k, prefix) {
			set[k] = true
		}
	}
	for k := range o.deletes {
		delete(set, k)
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Commit applies buffered writes to the parent.
func (o *overlay) Commit() {
	for k, v := range o.writes {
		o.parent.Set(k, v)
	}
	for k := range o.deletes {
		o.parent.Delete(k)
	}
}

// Engine executes calls against a registry with per-call isolation.
type Engine struct {
	registry *Registry
}

// NewEngine wraps a registry.
func NewEngine(r *Registry) *Engine {
	return &Engine{registry: r}
}

// Registry exposes the engine's contract registry.
func (e *Engine) Registry() *Registry { return e.registry }

// Execute runs one call against state. On contract error, no state change is
// applied and the error is returned (the blockchain records the tx as failed
// but still includes it).
func (e *Engine) Execute(ctx CallCtx, st StateDB, call Call) ([]Event, error) {
	c, ok := e.registry.Get(call.Contract)
	if !ok {
		return nil, fmt.Errorf("contract: execute %q: %w", call.Contract, ErrUnknownContract)
	}
	if ctx.Cross == nil {
		// Cross-reads observe the committed block state, not the executing
		// transaction's own pending overlay.
		ctx.Cross = crossView{st: st}
	}
	ov := NewOverlay(st)
	events, err := c.Execute(ctx, Namespace(ov, call.Contract), call)
	if err != nil {
		return nil, err
	}
	ov.Commit()
	// Stamp event provenance.
	for i := range events {
		events[i].Contract = call.Contract
		events[i].Height = ctx.Height
		events[i].TxID = ctx.TxID
	}
	return events, nil
}

// OnBlock runs every registered BlockHook for the block boundary.
func (e *Engine) OnBlock(height uint64, blockTime time.Time, st StateDB) []Event {
	var events []Event
	for _, name := range e.registry.Names() {
		c, _ := e.registry.Get(name)
		hook, ok := c.(BlockHook)
		if !ok {
			continue
		}
		evs := hook.OnBlock(height, blockTime, Namespace(st, name))
		for i := range evs {
			evs[i].Contract = name
			evs[i].Height = height
		}
		events = append(events, evs...)
	}
	return events
}
