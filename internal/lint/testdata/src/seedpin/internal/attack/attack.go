// Package attack is the fixture chaos harness: seedpin applies to its
// non-test files too.
package attack

// Campaign is a seeded chaos scenario.
type Campaign struct {
	Name string
	Seed int64
}

// Presets returns built-in campaigns.
func Presets() []Campaign {
	return []Campaign{
		{Name: "partition"}, // want "literal without an explicit Seed"
		{Name: "flaky", Seed: 7},
	}
}
