// Package attack implements the threat model of the paper's §I ("it is
// possible that the components are compromised so that access requests or
// responses are modified, or the policies and the evaluation process are
// altered by a malicious user or software to gain unauthorised access") as
// an executable catalogue of attack scenarios, plus the chain-level
// analyses (log forgery, history rewriting) used by experiments E3 and E5.
//
// Each Scenario knows how to install itself into a running drams.Deployment
// and which alert types the monitor must raise — the ground truth for the
// E5 detection matrix.
package attack

import (
	"fmt"

	"drams"
	"drams/internal/core"
	"drams/internal/federation"
	"drams/internal/xacml"
)

// Scenario is one executable attack from the threat model.
type Scenario struct {
	// ID is the DESIGN.md attack identifier (A1…A8).
	ID string
	// Name is a short label.
	Name string
	// Description explains the attack in operator terms.
	Description string
	// Expected lists the alert types that must fire (any one suffices for
	// detection; all listed are plausible).
	Expected []core.AlertType
	// WantPermit is the enforced outcome the attacker is after (used by
	// scenarios whose precondition is a wrongly granted access).
	WantPermit bool
	// install plants the attack; returned func removes it.
	install func(dep *drams.Deployment, victim string) (cleanup func(), err error)
}

// Install plants the scenario at the victim tenant and returns a cleanup
// function.
func (s Scenario) Install(dep *drams.Deployment, victim string) (func(), error) {
	return s.install(dep, victim)
}

// flipEvaluator returns the opposite of the honest decision (compromised
// evaluation process, A4).
type flipEvaluator struct{ inner xacml.Evaluator }

func (f flipEvaluator) Evaluate(r *xacml.Request) (xacml.Result, error) {
	res, err := f.inner.Evaluate(r)
	if err != nil {
		return res, err
	}
	if res.Decision == xacml.Permit {
		res.Decision = xacml.Deny
	} else {
		res.Decision = xacml.Permit
	}
	return res, nil
}

// permitAllPolicy is the substituted policy of A5.
func permitAllPolicy() *xacml.PolicySet {
	return &xacml.PolicySet{ID: "root", Version: "evil-open", Alg: xacml.PermitUnlessDeny,
		Items: []xacml.PolicyItem{{Policy: &xacml.Policy{ID: "open", Version: "1",
			Alg:   xacml.FirstApplicable,
			Rules: []*xacml.Rule{{ID: "permit-all", Effect: xacml.EffectPermit}}}}}}
}

// lyingDigestEvaluator evaluates a substituted policy but reports the
// anchored policy's identity — the stealthier variant of A5 that M6 cannot
// see and only M5 catches.
type lyingDigestEvaluator struct {
	evil   *xacml.PDP
	honest xacml.Evaluator
}

func (l lyingDigestEvaluator) Evaluate(r *xacml.Request) (xacml.Result, error) {
	res, err := l.evil.Evaluate(r)
	if err != nil {
		return res, err
	}
	honest, herr := l.honest.Evaluate(r)
	if herr == nil {
		res.PolicyID = honest.PolicyID
		res.PolicyVersion = honest.PolicyVersion
		res.PolicyDigest = honest.PolicyDigest
	}
	return res, nil
}

// Catalogue returns the executable threat catalogue. escalate rewrites a
// request into its privileged form (used by A1); it may be nil when A1 is
// not exercised.
func Catalogue(escalate func(*xacml.Request) *xacml.Request) []Scenario {
	return []Scenario{
		{
			ID:          "A1",
			Name:        "request tampering in transit",
			Description: "request rewritten (privilege escalation) between PEP egress and PDP ingress",
			Expected:    []core.AlertType{core.AlertRequestTampered},
			WantPermit:  true,
			install: func(dep *drams.Deployment, victim string) (func(), error) {
				if escalate == nil {
					return nil, fmt.Errorf("attack: A1 needs an escalation rewrite")
				}
				if err := dep.TamperPEP(victim, &federation.Tamper{Request: escalate}); err != nil {
					return nil, err
				}
				return func() { _ = dep.TamperPEP(victim, nil) }, nil
			},
		},
		{
			ID:          "A2",
			Name:        "response tampering in transit",
			Description: "Deny flipped to Permit between PDP egress and PEP ingress",
			Expected:    []core.AlertType{core.AlertResponseTampered},
			WantPermit:  true,
			install: func(dep *drams.Deployment, victim string) (func(), error) {
				t := &federation.Tamper{Response: func(res xacml.Result) xacml.Result {
					if res.Decision == xacml.Deny {
						res.Decision = xacml.Permit
					}
					return res
				}}
				if err := dep.TamperPEP(victim, t); err != nil {
					return nil, err
				}
				return func() { _ = dep.TamperPEP(victim, nil) }, nil
			},
		},
		{
			ID:          "A3",
			Name:        "PEP enforcement override",
			Description: "compromised PEP grants access regardless of the received decision",
			Expected:    []core.AlertType{core.AlertEnforcementMismatch},
			WantPermit:  true,
			install: func(dep *drams.Deployment, victim string) (func(), error) {
				t := &federation.Tamper{Enforce: func(xacml.Decision) xacml.Decision { return xacml.Permit }}
				if err := dep.TamperPEP(victim, t); err != nil {
					return nil, err
				}
				return func() { _ = dep.TamperPEP(victim, nil) }, nil
			},
		},
		{
			ID:          "A4",
			Name:        "PDP evaluation altered",
			Description: "compromised PDP returns the opposite decision while claiming the correct policy",
			Expected:    []core.AlertType{core.AlertDecisionIncorrect},
			install: func(dep *drams.Deployment, victim string) (func(), error) {
				dep.CompromisePDP(func(inner xacml.Evaluator) xacml.Evaluator {
					return flipEvaluator{inner: inner}
				})
				return func() { dep.CompromisePDP(nil) }, nil
			},
		},
		{
			ID:          "A5",
			Name:        "policy substitution (honest digest)",
			Description: "PDP evaluates a permit-everything policy that was never anchored by the PAP",
			Expected:    []core.AlertType{core.AlertPolicyTampered},
			WantPermit:  true,
			install: func(dep *drams.Deployment, victim string) (func(), error) {
				evil := xacml.NewPDP(permitAllPolicy())
				dep.CompromisePDP(func(xacml.Evaluator) xacml.Evaluator { return evil })
				return func() { dep.CompromisePDP(nil) }, nil
			},
		},
		{
			ID:          "A5b",
			Name:        "policy substitution (forged digest)",
			Description: "PDP evaluates a substituted policy but reports the anchored digest; only the analyser can tell",
			Expected:    []core.AlertType{core.AlertDecisionIncorrect},
			WantPermit:  true,
			install: func(dep *drams.Deployment, victim string) (func(), error) {
				evil := xacml.NewPDP(permitAllPolicy())
				dep.CompromisePDP(func(inner xacml.Evaluator) xacml.Evaluator {
					return lyingDigestEvaluator{evil: evil, honest: inner}
				})
				return func() { dep.CompromisePDP(nil) }, nil
			},
		},
		{
			ID:          "A6",
			Name:        "request suppression",
			Description: "request dropped after PEP egress; the PDP never sees it",
			Expected:    []core.AlertType{core.AlertMessageSuppressed},
			install: func(dep *drams.Deployment, victim string) (func(), error) {
				if err := dep.TamperPEP(victim, &federation.Tamper{DropRequest: true}); err != nil {
					return nil, err
				}
				return func() { _ = dep.TamperPEP(victim, nil) }, nil
			},
		},
		{
			ID:          "A7",
			Name:        "response suppression",
			Description: "decision dropped before reaching the PEP; access is never enforced or logged at the edge",
			Expected:    []core.AlertType{core.AlertMessageSuppressed},
			install: func(dep *drams.Deployment, victim string) (func(), error) {
				if err := dep.TamperPEP(victim, &federation.Tamper{DropResponse: true}); err != nil {
					return nil, err
				}
				return func() { _ = dep.TamperPEP(victim, nil) }, nil
			},
		},
	}
}
