package xacml

import (
	"container/list"
	"sync"
	"sync/atomic"

	"drams/internal/crypto"
	"drams/internal/metrics"
)

// cacheShards is the stripe count of the DecisionCache. Keys are SHA-256
// digests of canonical request content, so the first key byte spreads
// entries uniformly.
const cacheShards = 16

// DefaultDecisionCacheSize is the entry bound used when NewDecisionCache is
// given a non-positive size.
const DefaultDecisionCacheSize = 4096

// CacheStats snapshots a DecisionCache's counters.
type CacheStats struct {
	// Hits counts lookups answered from the cache.
	Hits int64
	// Misses counts lookups that fell through to full evaluation.
	Misses int64
	// Invalidations counts entries discarded because they were computed
	// under a different policy-set digest than the active one.
	Invalidations int64
	// Evictions counts entries displaced by the LRU bound.
	Evictions int64
	// Purges counts whole-cache clears (policy loads).
	Purges int64
	// StalePuts counts stores discarded because the cache epoch advanced
	// (a Purge ran) between the caller's lookup and its Put — the
	// hot-swap window a concurrent policy load opens.
	StalePuts int64
}

// DecisionCache memoises PDP results keyed by the canonical request content
// digest (Request.Digest — attribute bags only, not the correlation ID), so
// repeated subject/resource/action combinations skip target and condition
// evaluation entirely. Every entry records the policy-set digest it was
// computed under; a lookup under a different digest discards the entry, so
// a policy swap can never serve stale decisions even if Purge is missed.
// The cache is partitioned into lock-striped LRU shards and is safe for
// concurrent use.
type DecisionCache struct {
	shards   [cacheShards]decisionShard
	perShard int

	// epoch advances on every Purge. Writers pin the epoch at lookup time
	// (Epoch) and pass it to Put, which discards stores from a previous
	// epoch — so an evaluation that raced a policy load can never park its
	// result in the post-swap cache, and a purge leaves nothing stale
	// behind regardless of in-flight evaluations.
	epoch atomic.Uint64

	hits          metrics.Counter
	misses        metrics.Counter
	invalidations metrics.Counter
	evictions     metrics.Counter
	purges        metrics.Counter
	stalePuts     metrics.Counter
}

type decisionShard struct {
	mu    sync.Mutex
	order *list.List // front = most recent; values are *decisionEntry
	items map[crypto.Digest]*list.Element
}

type decisionEntry struct {
	key    crypto.Digest // request content digest
	policy crypto.Digest // policy-set digest the result was computed under
	res    Result        // RequestID left empty; filled in per lookup
}

// NewDecisionCache returns a cache bounded to roughly `size` entries
// (DefaultDecisionCacheSize when size <= 0).
func NewDecisionCache(size int) *DecisionCache {
	if size <= 0 {
		size = DefaultDecisionCacheSize
	}
	per := size / cacheShards
	if per < 1 {
		per = 1
	}
	c := &DecisionCache{perShard: per}
	for i := range c.shards {
		c.shards[i].order = list.New()
		c.shards[i].items = make(map[crypto.Digest]*list.Element, per)
	}
	return c
}

func (c *DecisionCache) shard(key crypto.Digest) *decisionShard {
	return &c.shards[key[0]%cacheShards]
}

// Get returns the cached result for the request key under the given policy
// digest. An entry computed under a different policy digest is discarded
// (digest invalidation) and reported as a miss.
func (c *DecisionCache) Get(key, policyDigest crypto.Digest) (Result, bool) {
	sh := c.shard(key)
	sh.mu.Lock()
	elem, ok := sh.items[key]
	if !ok {
		sh.mu.Unlock()
		c.misses.Inc()
		return Result{}, false
	}
	ent := elem.Value.(*decisionEntry)
	if ent.policy != policyDigest {
		sh.order.Remove(elem)
		delete(sh.items, key)
		sh.mu.Unlock()
		c.invalidations.Inc()
		c.misses.Inc()
		return Result{}, false
	}
	sh.order.MoveToFront(elem)
	res := ent.res
	sh.mu.Unlock()
	c.hits.Inc()
	return res, true
}

// Epoch returns the current cache epoch. Callers that will Put a result
// computed from a policy snapshot must pin the epoch before (or while)
// taking that snapshot and hand it back to Put.
func (c *DecisionCache) Epoch() uint64 { return c.epoch.Load() }

// Put stores a result computed under the given policy digest. The stored
// Result must not carry a correlation ID (the PDP strips it before Put and
// re-stamps it on every Get). epoch is the value Epoch returned when the
// caller looked up the policy snapshot the result was computed from; if a
// Purge ran since, the store is discarded, so a purge is final.
func (c *DecisionCache) Put(key, policyDigest crypto.Digest, res Result, epoch uint64) {
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	// Checked under the shard lock: Purge bumps the epoch before clearing
	// any shard, so either this store observes the bump and bails, or the
	// purge's sweep of this shard is ordered after it and removes it.
	if c.epoch.Load() != epoch {
		c.stalePuts.Inc()
		return
	}
	if elem, ok := sh.items[key]; ok {
		ent := elem.Value.(*decisionEntry)
		ent.policy = policyDigest
		ent.res = res
		sh.order.MoveToFront(elem)
		return
	}
	for sh.order.Len() >= c.perShard {
		oldest := sh.order.Back()
		sh.order.Remove(oldest)
		delete(sh.items, oldest.Value.(*decisionEntry).key)
		c.evictions.Inc()
	}
	sh.items[key] = sh.order.PushFront(&decisionEntry{key: key, policy: policyDigest, res: res})
}

// Purge drops every entry and advances the cache epoch; called on policy
// load so memory is reclaimed promptly (digest checking alone already
// guarantees a stale entry cannot be served) and so in-flight evaluations
// from before the load cannot re-populate the cache afterwards.
func (c *DecisionCache) Purge() {
	c.epoch.Add(1)
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.order.Init()
		sh.items = make(map[crypto.Digest]*list.Element, c.perShard)
		sh.mu.Unlock()
	}
	c.purges.Inc()
}

// Len returns the current number of cached decisions.
func (c *DecisionCache) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += len(c.shards[i].items)
		c.shards[i].mu.Unlock()
	}
	return n
}

// Stats snapshots the cache counters.
func (c *DecisionCache) Stats() CacheStats {
	return CacheStats{
		Hits:          c.hits.Value(),
		Misses:        c.misses.Value(),
		Invalidations: c.invalidations.Value(),
		Evictions:     c.evictions.Value(),
		Purges:        c.purges.Value(),
		StalePuts:     c.stalePuts.Value(),
	}
}
