// Package svc exercises the ctxflow analyzer.
package svc

import (
	"context"
	"time"
)

// Lookup severs the caller's deadline by minting a fresh context.
func Lookup(ctx context.Context, key string) string {
	fresh, cancel := context.WithTimeout(context.Background(), time.Second) // want "inside a function that receives a context.Context"
	defer cancel()
	_ = fresh
	return key
}

// Watch does it inside a closure that lexically captures ctx.
func Watch(ctx context.Context) func() {
	return func() {
		_ = context.TODO() // want "inside a function that receives a context.Context"
	}
}
