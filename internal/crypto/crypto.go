// Package crypto supplies the cryptographic substrate of DRAMS:
//
//   - Digest: SHA-256 content digests used to fingerprint requests, responses,
//     policies and blocks.
//   - Cipher: AES-256-GCM authenticated symmetric encryption. The Logging
//     Interfaces share a symmetric key K and encrypt every log payload before
//     it reaches the blockchain, because on-chain data is visible to all
//     participants (paper §II).
//   - Identity / PublicIdentity: ed25519 signing identities for components
//     (agents, LIs, analyser, PAP). Every blockchain transaction is signed so
//     that log forgery by outsiders is rejected (attack A8).
//   - SoftTPM (tpm.go): a simulated Trusted Platform Module providing the
//     §III "System Integrity" mitigation — measured boot, key sealing and
//     attestation quotes.
package crypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
)

// DigestSize is the size in bytes of a Digest.
const DigestSize = sha256.Size

// Digest is a SHA-256 hash value.
type Digest [DigestSize]byte

// Sum computes the digest of data.
func Sum(data []byte) Digest { return sha256.Sum256(data) }

// SumAll computes the digest of the concatenation of the given chunks, each
// prefixed by its length so the encoding is injective.
func SumAll(chunks ...[]byte) Digest {
	h := sha256.New()
	var lenBuf [8]byte
	for _, c := range chunks {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(c)))
		h.Write(lenBuf[:])
		h.Write(c)
	}
	var d Digest
	copy(d[:], h.Sum(nil))
	return d
}

// String renders the digest as lowercase hex.
func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// Short returns the first 8 hex characters for compact display.
func (d Digest) Short() string { return hex.EncodeToString(d[:4]) }

// IsZero reports whether the digest is all zeroes.
func (d Digest) IsZero() bool { return d == Digest{} }

// Bytes returns a copy of the digest as a slice.
func (d Digest) Bytes() []byte {
	out := make([]byte, DigestSize)
	copy(out, d[:])
	return out
}

// ParseDigest decodes a 64-character hex string.
func ParseDigest(s string) (Digest, error) {
	var d Digest
	b, err := hex.DecodeString(s)
	if err != nil {
		return d, fmt.Errorf("crypto: parse digest: %w", err)
	}
	if len(b) != DigestSize {
		return d, fmt.Errorf("crypto: parse digest: want %d bytes, got %d", DigestSize, len(b))
	}
	copy(d[:], b)
	return d, nil
}

// LeadingZeroBits counts the number of leading zero bits in the digest; this
// is the proof-of-work difficulty measure used by the blockchain.
func (d Digest) LeadingZeroBits() int {
	n := 0
	for _, b := range d {
		if b == 0 {
			n += 8
			continue
		}
		for mask := byte(0x80); mask != 0; mask >>= 1 {
			if b&mask != 0 {
				return n
			}
			n++
		}
	}
	return n
}

// KeySize is the AES-256 key size in bytes.
const KeySize = 32

// Key is a symmetric encryption key (the shared LI key K from the paper).
type Key [KeySize]byte

// NewKey generates a fresh random key.
func NewKey() (Key, error) {
	var k Key
	if _, err := io.ReadFull(rand.Reader, k[:]); err != nil {
		return k, fmt.Errorf("crypto: generate key: %w", err)
	}
	return k, nil
}

// DeriveKey deterministically derives a key from a passphrase and context
// label using HMAC-SHA256 (sufficient for simulation; not a password KDF).
func DeriveKey(passphrase, context string) Key {
	mac := hmac.New(sha256.New, []byte(passphrase))
	mac.Write([]byte(context))
	var k Key
	copy(k[:], mac.Sum(nil))
	return k
}

// ErrDecrypt is returned when a ciphertext fails authentication — either the
// wrong key was used or the ciphertext was tampered with.
var ErrDecrypt = errors.New("crypto: message authentication failed")

// Cipher performs AES-256-GCM authenticated encryption with a fixed key.
// It is safe for concurrent use.
type Cipher struct {
	aead cipher.AEAD
}

// NewCipher constructs a Cipher around key.
func NewCipher(key Key) (*Cipher, error) {
	block, err := aes.NewCipher(key[:])
	if err != nil {
		return nil, fmt.Errorf("crypto: new cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("crypto: new GCM: %w", err)
	}
	return &Cipher{aead: aead}, nil
}

// Encrypt seals plaintext with a random nonce; the nonce is prepended to the
// returned ciphertext. additional is authenticated but not encrypted and must
// be presented again at decryption.
func (c *Cipher) Encrypt(plaintext, additional []byte) ([]byte, error) {
	nonce := make([]byte, c.aead.NonceSize(), c.aead.NonceSize()+len(plaintext)+c.aead.Overhead())
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return nil, fmt.Errorf("crypto: nonce: %w", err)
	}
	return c.aead.Seal(nonce, nonce, plaintext, additional), nil
}

// Decrypt opens a ciphertext produced by Encrypt. It returns ErrDecrypt if
// authentication fails.
func (c *Cipher) Decrypt(ciphertext, additional []byte) ([]byte, error) {
	ns := c.aead.NonceSize()
	if len(ciphertext) < ns {
		return nil, fmt.Errorf("crypto: ciphertext too short (%d bytes): %w", len(ciphertext), ErrDecrypt)
	}
	nonce, sealed := ciphertext[:ns], ciphertext[ns:]
	pt, err := c.aead.Open(nil, nonce, sealed, additional)
	if err != nil {
		return nil, ErrDecrypt
	}
	return pt, nil
}

// Overhead reports the per-message ciphertext expansion (nonce + tag).
func (c *Cipher) Overhead() int { return c.aead.NonceSize() + c.aead.Overhead() }

// Identity is an ed25519 signing identity for a DRAMS component.
type Identity struct {
	name string
	priv ed25519.PrivateKey
	pub  ed25519.PublicKey
}

// NewIdentity generates a fresh identity with the given component name.
func NewIdentity(name string) (*Identity, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("crypto: generate identity %q: %w", name, err)
	}
	return &Identity{name: name, priv: priv, pub: pub}, nil
}

// NewIdentityFromSeed derives a deterministic identity from a 32-byte seed;
// used by simulations that must be reproducible.
func NewIdentityFromSeed(name string, seed [32]byte) *Identity {
	priv := ed25519.NewKeyFromSeed(seed[:])
	return &Identity{name: name, priv: priv, pub: priv.Public().(ed25519.PublicKey)}
}

// Name returns the component name bound to the identity.
func (id *Identity) Name() string { return id.name }

// Public returns the shareable half of the identity.
func (id *Identity) Public() PublicIdentity {
	pub := make(ed25519.PublicKey, len(id.pub))
	copy(pub, id.pub)
	return PublicIdentity{Name: id.name, Key: pub}
}

// Sign signs msg.
func (id *Identity) Sign(msg []byte) []byte {
	return ed25519.Sign(id.priv, msg)
}

// PublicIdentity is the verifying half of an Identity.
type PublicIdentity struct {
	Name string            `json:"name"`
	Key  ed25519.PublicKey `json:"key"`
}

// Verify reports whether sig is a valid signature over msg by this identity.
func (p PublicIdentity) Verify(msg, sig []byte) bool {
	if len(p.Key) != ed25519.PublicKeySize {
		return false
	}
	return ed25519.Verify(p.Key, msg, sig)
}

// Fingerprint returns a digest identifying the public key.
func (p PublicIdentity) Fingerprint() Digest {
	return SumAll([]byte(p.Name), p.Key)
}

// SigCheck is one ed25519 verification job for VerifyBatch.
type SigCheck struct {
	Key ed25519.PublicKey
	Msg []byte
	Sig []byte
}

// Verify runs the single check, guarding against malformed keys.
func (c SigCheck) Verify() bool {
	if len(c.Key) != ed25519.PublicKeySize {
		return false
	}
	return ed25519.Verify(c.Key, c.Msg, c.Sig)
}

// verifyBatchInlineLimit is the batch size below which fanning out costs more
// than it saves (goroutine wake-up vs ~50µs per ed25519 verification).
const verifyBatchInlineLimit = 4

// VerifyBatch verifies the checks across at most `workers` goroutines
// (GOMAXPROCS when workers <= 0) and returns one result per check,
// index-aligned. Small batches are verified inline on the caller's
// goroutine. Signature verification is a pure function, so results are
// identical to calling each check sequentially.
func VerifyBatch(workers int, checks []SigCheck) []bool {
	out := make([]bool, len(checks))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(checks) {
		workers = len(checks)
	}
	if workers <= 1 || len(checks) <= verifyBatchInlineLimit {
		for i, c := range checks {
			out[i] = c.Verify()
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(checks) {
					return
				}
				out[i] = checks[i].Verify()
			}
		}()
	}
	wg.Wait()
	return out
}

// HMAC computes HMAC-SHA256 of msg under key.
func HMAC(key Key, msg []byte) Digest {
	mac := hmac.New(sha256.New, key[:])
	mac.Write(msg)
	var d Digest
	copy(d[:], mac.Sum(nil))
	return d
}

// ConstantTimeEqual compares two byte slices in constant time.
func ConstantTimeEqual(a, b []byte) bool {
	return hmac.Equal(a, b)
}
