// Package util is a non-stratum helper the stratum must not reach.
package util

// Mix folds b into h.
func Mix(h uint64, b byte) uint64 { return h*131 + uint64(b) }
