package drams_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"drams"
	"drams/internal/core"
	"drams/internal/federation"
	"drams/internal/xacml"
)

// testPolicy permits doctors to read records and denies everyone else.
func testPolicy(version string) *xacml.PolicySet {
	doctorRead := &xacml.Rule{
		ID:     "doctor-read",
		Effect: xacml.EffectPermit,
		Target: xacml.Target{AnyOf: []xacml.AnyOf{{AllOf: []xacml.AllOf{{Matches: []xacml.Match{
			{Op: xacml.CmpEq, Attr: xacml.Designator{Cat: xacml.CatSubject, ID: "role"}, Lit: xacml.String("doctor")},
			{Op: xacml.CmpEq, Attr: xacml.Designator{Cat: xacml.CatAction, ID: "op"}, Lit: xacml.String("read")},
		}}}}}},
	}
	defaultDeny := &xacml.Rule{ID: "default-deny", Effect: xacml.EffectDeny}
	pol := &xacml.Policy{ID: "records", Version: "1", Alg: xacml.FirstApplicable,
		Rules: []*xacml.Rule{doctorRead, defaultDeny}}
	return &xacml.PolicySet{ID: "root", Version: version, Alg: xacml.DenyUnlessPermit,
		Items: []xacml.PolicyItem{{Policy: pol}}}
}

func testDeployment(t *testing.T, mutate func(*drams.Config)) *drams.Deployment {
	t.Helper()
	cfg := drams.Config{
		Policy:     testPolicy("v1"),
		Difficulty: 6,
		// The M3/verdict deadline must leave room for the whole pipeline
		// (request → decision → four logs mined → analyser verdict mined)
		// under concurrent load; 20 blocks × 15ms ≈ 300ms.
		TimeoutBlocks:      20,
		EmptyBlockInterval: 15 * time.Millisecond,
		Seed:               42,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	dep, err := drams.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(dep.Close)
	return dep
}

func doctorRequest(dep *drams.Deployment) *xacml.Request {
	return dep.NewRequest().
		Add(xacml.CatSubject, "role", xacml.String("doctor")).
		Add(xacml.CatAction, "op", xacml.String("read"))
}

func ctx20(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestCleanRequestPermittedAndMatched(t *testing.T) {
	dep := testDeployment(t, nil)
	req := doctorRequest(dep)
	enf, err := dep.Request("tenant-1", req)
	if err != nil {
		t.Fatal(err)
	}
	if !enf.Permitted() {
		t.Fatalf("doctor read = %s", enf.Decision)
	}
	if err := dep.WaitForMatched(ctx20(t), req.ID); err != nil {
		t.Fatal(err)
	}
	if alerts := dep.Monitor.AlertsFor(req.ID); len(alerts) != 0 {
		t.Fatalf("clean request raised alerts: %v", alerts)
	}
}

func TestCleanDenyMatched(t *testing.T) {
	dep := testDeployment(t, nil)
	req := dep.NewRequest().
		Add(xacml.CatSubject, "role", xacml.String("intern")).
		Add(xacml.CatAction, "op", xacml.String("read"))
	enf, err := dep.Request("tenant-2", req)
	if err != nil {
		t.Fatal(err)
	}
	if enf.Permitted() {
		t.Fatal("intern was permitted")
	}
	if err := dep.WaitForMatched(ctx20(t), req.ID); err != nil {
		t.Fatal(err)
	}
}

func TestDetectsEnforcementOverride(t *testing.T) {
	dep := testDeployment(t, nil)
	// Compromised PEP grants everything regardless of the decision (A3).
	if err := dep.TamperPEP("tenant-1", &drams.Tamper{
		Enforce: func(xacml.Decision) xacml.Decision { return xacml.Permit },
	}); err != nil {
		t.Fatal(err)
	}
	req := dep.NewRequest().
		Add(xacml.CatSubject, "role", xacml.String("intern")).
		Add(xacml.CatAction, "op", xacml.String("read"))
	enf, err := dep.Request("tenant-1", req)
	if err != nil {
		t.Fatal(err)
	}
	if !enf.Permitted() {
		t.Fatal("attack precondition failed: PEP should have granted")
	}
	alert, err := dep.WaitForAlert(ctx20(t), req.ID, core.AlertEnforcementMismatch)
	if err != nil {
		t.Fatal(err)
	}
	if alert.Tenant != "tenant-1" {
		t.Fatalf("alert tenant = %q", alert.Tenant)
	}
}

func TestDetectsResponseTamper(t *testing.T) {
	dep := testDeployment(t, nil)
	// Response flipped in transit (A2).
	if err := dep.TamperPEP("tenant-1", &drams.Tamper{
		Response: func(res xacml.Result) xacml.Result {
			if res.Decision == xacml.Deny {
				res.Decision = xacml.Permit
			}
			return res
		},
	}); err != nil {
		t.Fatal(err)
	}
	req := dep.NewRequest().
		Add(xacml.CatSubject, "role", xacml.String("intern")).
		Add(xacml.CatAction, "op", xacml.String("read"))
	if _, err := dep.Request("tenant-1", req); err != nil {
		t.Fatal(err)
	}
	if _, err := dep.WaitForAlert(ctx20(t), req.ID, core.AlertResponseTampered); err != nil {
		t.Fatal(err)
	}
}

func TestDetectsRequestTamper(t *testing.T) {
	dep := testDeployment(t, nil)
	// Privilege escalation in transit: intern request rewritten to claim
	// the doctor role (A1).
	if err := dep.TamperPEP("tenant-2", &drams.Tamper{
		Request: func(req *xacml.Request) *xacml.Request {
			out := xacml.NewRequest(req.ID)
			out.Add(xacml.CatSubject, "role", xacml.String("doctor"))
			out.Add(xacml.CatAction, "op", xacml.String("read"))
			return out
		},
	}); err != nil {
		t.Fatal(err)
	}
	req := dep.NewRequest().
		Add(xacml.CatSubject, "role", xacml.String("intern")).
		Add(xacml.CatAction, "op", xacml.String("read"))
	enf, err := dep.Request("tenant-2", req)
	if err != nil {
		t.Fatal(err)
	}
	if !enf.Permitted() {
		t.Fatal("attack precondition failed: escalated request should be permitted")
	}
	if _, err := dep.WaitForAlert(ctx20(t), req.ID, core.AlertRequestTampered); err != nil {
		t.Fatal(err)
	}
}

// flipEvaluator models a compromised PDP evaluation process (A4).
type flipEvaluator struct{ inner xacml.Evaluator }

func (f flipEvaluator) Evaluate(r *xacml.Request) (xacml.Result, error) {
	res, err := f.inner.Evaluate(r)
	if err != nil {
		return res, err
	}
	switch res.Decision {
	case xacml.Permit:
		res.Decision = xacml.Deny
	default:
		res.Decision = xacml.Permit
	}
	return res, nil
}

func TestDetectsCompromisedPDP(t *testing.T) {
	dep := testDeployment(t, nil)
	dep.CompromisePDP(func(inner xacml.Evaluator) xacml.Evaluator {
		return flipEvaluator{inner: inner}
	})
	req := doctorRequest(dep)
	enf, err := dep.Request("tenant-1", req)
	if err != nil {
		t.Fatal(err)
	}
	if enf.Permitted() {
		t.Fatal("attack precondition failed: flipped PDP should deny the doctor")
	}
	if _, err := dep.WaitForAlert(ctx20(t), req.ID, core.AlertDecisionIncorrect); err != nil {
		t.Fatal(err)
	}
	// Restoring the honest PDP stops the alerts.
	dep.CompromisePDP(nil)
	req2 := doctorRequest(dep)
	if _, err := dep.Request("tenant-1", req2); err != nil {
		t.Fatal(err)
	}
	if err := dep.WaitForMatched(ctx20(t), req2.ID); err != nil {
		t.Fatal(err)
	}
}

func TestDetectsPolicySubstitution(t *testing.T) {
	dep := testDeployment(t, nil)
	// The PDP is made to evaluate a permit-everything policy that was
	// never anchored by the PAP (A5).
	evil := &xacml.PolicySet{ID: "root", Version: "evil", Alg: xacml.PermitUnlessDeny,
		Items: []xacml.PolicyItem{{Policy: &xacml.Policy{ID: "open", Version: "1",
			Alg: xacml.FirstApplicable, Rules: []*xacml.Rule{{ID: "p", Effect: xacml.EffectPermit}}}}}}
	evilPDP := xacml.NewPDP(evil)
	dep.CompromisePDP(func(xacml.Evaluator) xacml.Evaluator { return evilPDP })

	req := dep.NewRequest().
		Add(xacml.CatSubject, "role", xacml.String("intern")).
		Add(xacml.CatAction, "op", xacml.String("read"))
	enf, err := dep.Request("tenant-1", req)
	if err != nil {
		t.Fatal(err)
	}
	if !enf.Permitted() {
		t.Fatal("attack precondition failed: evil policy should permit")
	}
	if _, err := dep.WaitForAlert(ctx20(t), req.ID, core.AlertPolicyTampered); err != nil {
		t.Fatal(err)
	}
}

func TestDetectsRequestSuppression(t *testing.T) {
	dep := testDeployment(t, nil)
	if err := dep.TamperPEP("tenant-1", &drams.Tamper{DropRequest: true}); err != nil {
		t.Fatal(err)
	}
	req := doctorRequest(dep)
	_, err := dep.Request("tenant-1", req)
	if !errors.Is(err, federation.ErrRequestDropped) {
		t.Fatalf("expected drop, got %v", err)
	}
	alert, err := dep.WaitForAlert(ctx20(t), req.ID, core.AlertMessageSuppressed)
	if err != nil {
		t.Fatal(err)
	}
	if alert.ReqID != req.ID {
		t.Fatalf("alert = %+v", alert)
	}
}

func TestDetectsResponseSuppression(t *testing.T) {
	dep := testDeployment(t, nil)
	if err := dep.TamperPEP("tenant-2", &drams.Tamper{DropResponse: true}); err != nil {
		t.Fatal(err)
	}
	req := doctorRequest(dep)
	if _, err := dep.Request("tenant-2", req); !errors.Is(err, federation.ErrRequestDropped) {
		t.Fatalf("expected drop, got %v", err)
	}
	if _, err := dep.WaitForAlert(ctx20(t), req.ID, core.AlertMessageSuppressed); err != nil {
		t.Fatal(err)
	}
}

func TestMonitorOffStillEnforces(t *testing.T) {
	dep := testDeployment(t, func(c *drams.Config) { c.MonitorOff = true })
	req := doctorRequest(dep)
	enf, err := dep.Request("tenant-1", req)
	if err != nil {
		t.Fatal(err)
	}
	if !enf.Permitted() {
		t.Fatalf("decision = %s", enf.Decision)
	}
	if _, err := dep.WaitForAlert(ctx20(t), req.ID, core.AlertRequestTampered); err == nil {
		t.Fatal("WaitForAlert should fail with monitoring off")
	}
}

func TestPolicyUpdateFlow(t *testing.T) {
	dep := testDeployment(t, nil)
	// v2 also lets nurses read.
	v2 := testPolicy("v2")
	nurseRule := &xacml.Rule{
		ID:     "nurse-read",
		Effect: xacml.EffectPermit,
		Target: xacml.Target{AnyOf: []xacml.AnyOf{{AllOf: []xacml.AllOf{{Matches: []xacml.Match{
			{Op: xacml.CmpEq, Attr: xacml.Designator{Cat: xacml.CatSubject, ID: "role"}, Lit: xacml.String("nurse")},
			{Op: xacml.CmpEq, Attr: xacml.Designator{Cat: xacml.CatAction, ID: "op"}, Lit: xacml.String("read")},
		}}}}}},
	}
	pol := v2.Items[0].Policy
	pol.Rules = append([]*xacml.Rule{nurseRule}, pol.Rules...)
	if err := dep.PublishPolicy(v2); err != nil {
		t.Fatal(err)
	}
	req := dep.NewRequest().
		Add(xacml.CatSubject, "role", xacml.String("nurse")).
		Add(xacml.CatAction, "op", xacml.String("read"))
	enf, err := dep.Request("tenant-1", req)
	if err != nil {
		t.Fatal(err)
	}
	if !enf.Permitted() {
		t.Fatalf("nurse under v2 = %s", enf.Decision)
	}
	// The exchange must still match cleanly under the new version.
	if err := dep.WaitForMatched(ctx20(t), req.ID); err != nil {
		t.Fatal(err)
	}
}

func TestTPMDeploymentBoots(t *testing.T) {
	dep := testDeployment(t, func(c *drams.Config) { c.UseTPM = true })
	if len(dep.TPMs) == 0 {
		t.Fatal("no TPMs created")
	}
	req := doctorRequest(dep)
	if _, err := dep.Request("tenant-1", req); err != nil {
		t.Fatal(err)
	}
	if err := dep.WaitForMatched(ctx20(t), req.ID); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteAgentsDeployment(t *testing.T) {
	// Agents separated from their LIs over the tenant network (§II
	// endpoint architecture): the pipeline must behave identically.
	dep := testDeployment(t, func(c *drams.Config) { c.RemoteAgents = true })
	if len(dep.RemoteAgents) == 0 || len(dep.Agents) != 0 {
		t.Fatalf("agent modes: remote=%d local=%d", len(dep.RemoteAgents), len(dep.Agents))
	}
	// Clean request matches on-chain.
	req := doctorRequest(dep)
	enf, err := dep.Request("tenant-1", req)
	if err != nil {
		t.Fatal(err)
	}
	if !enf.Permitted() {
		t.Fatalf("decision = %s", enf.Decision)
	}
	if err := dep.WaitForMatched(ctx20(t), req.ID); err != nil {
		t.Fatal(err)
	}
	// Attacks are still detected end to end.
	if err := dep.TamperPEP("tenant-1", &drams.Tamper{
		Enforce: func(xacml.Decision) xacml.Decision { return xacml.Permit },
	}); err != nil {
		t.Fatal(err)
	}
	bad := dep.NewRequest().
		Add(xacml.CatSubject, "role", xacml.String("intern")).
		Add(xacml.CatAction, "op", xacml.String("read"))
	if _, err := dep.Request("tenant-1", bad); err != nil {
		t.Fatal(err)
	}
	if _, err := dep.WaitForAlert(ctx20(t), bad.ID, core.AlertEnforcementMismatch); err != nil {
		t.Fatal(err)
	}
}

func TestMineAllConvergesWithCompetingMiners(t *testing.T) {
	// Every cloud mines (more realistic, fork-prone): clean traffic must
	// still match and all nodes must share one state.
	dep := testDeployment(t, func(c *drams.Config) {
		c.MineAll = true
		c.TimeoutBlocks = 40
	})
	for i := 0; i < 4; i++ {
		req := doctorRequest(dep)
		tenant := "tenant-1"
		if i%2 == 1 {
			tenant = "tenant-2"
		}
		if _, err := dep.Request(tenant, req); err != nil {
			t.Fatal(err)
		}
		if err := dep.WaitForMatched(ctx20(t), req.ID); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	// Replicas converge (allow gossip to settle).
	deadline := time.Now().Add(20 * time.Second)
	for {
		d1 := dep.Nodes["cloud-1"].Chain().StateDigest()
		d2 := dep.Nodes["cloud-2"].Chain().StateDigest()
		if d1 == d2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("multi-miner replicas did not converge")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if n := dep.Monitor.Stats().AlertsSeen; n != 0 {
		t.Fatalf("clean multi-miner traffic raised %d alerts", n)
	}
}

func TestManyConcurrentRequestsAllMatch(t *testing.T) {
	// The stress load tests pipeline completeness, not detection latency:
	// give the verdict/M3 window enough slack to absorb the ~10× slowdown
	// of instrumented runs (-race), where 20 concurrent analyser verdicts
	// can overrun a 300 ms deadline.
	dep := testDeployment(t, func(c *drams.Config) { c.TimeoutBlocks = 80 })
	const n = 20
	reqs := make([]*xacml.Request, n)
	errCh := make(chan error, n)
	for i := 0; i < n; i++ {
		reqs[i] = doctorRequest(dep)
	}
	for i := 0; i < n; i++ {
		go func(i int) {
			tenant := "tenant-1"
			if i%2 == 1 {
				tenant = "tenant-2"
			}
			_, err := dep.Request(tenant, reqs[i])
			errCh <- err
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for i := 0; i < n; i++ {
		if err := dep.WaitForMatched(ctx, reqs[i].ID); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	st := dep.Monitor.Stats()
	if st.Matched < n {
		t.Fatalf("matched %d < %d", st.Matched, n)
	}
	if st.AlertsSeen != 0 {
		t.Fatalf("clean load raised %d alerts: %v", st.AlertsSeen, dep.Monitor.Alerts())
	}
}
