package contract

import (
	"encoding/json"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"drams/internal/crypto"
)

// echoContract is a test contract recording calls and optionally failing.
type echoContract struct {
	name    string
	failOn  string
	onBlock func(height uint64, st StateDB) []Event
}

func (e *echoContract) Name() string { return e.name }

func (e *echoContract) Execute(ctx CallCtx, st StateDB, call Call) ([]Event, error) {
	if call.Method == e.failOn {
		st.Set("should-not-persist", []byte("x"))
		return nil, errors.New("forced failure")
	}
	st.Set("last-method", []byte(call.Method))
	st.Set("last-caller", []byte(ctx.Caller))
	return []Event{{Type: "Echo", Payload: call.Args}}, nil
}

func (e *echoContract) OnBlock(height uint64, blockTime time.Time, st StateDB) []Event {
	if e.onBlock != nil {
		return e.onBlock(height, st)
	}
	return nil
}

func TestStateBasicOps(t *testing.T) {
	s := NewState()
	s.Set("a", []byte("1"))
	v, ok := s.Get("a")
	if !ok || string(v) != "1" {
		t.Fatalf("get = %q, %v", v, ok)
	}
	s.Delete("a")
	if _, ok := s.Get("a"); ok {
		t.Fatal("deleted key present")
	}
	if _, ok := s.Get("never"); ok {
		t.Fatal("phantom key")
	}
}

func TestStateCopySemantics(t *testing.T) {
	s := NewState()
	in := []byte("abc")
	s.Set("k", in)
	in[0] = 'X'
	v, _ := s.Get("k")
	if string(v) != "abc" {
		t.Fatal("Set did not copy")
	}
	v[0] = 'Y'
	v2, _ := s.Get("k")
	if string(v2) != "abc" {
		t.Fatal("Get did not copy")
	}
}

func TestStateKeysSortedPrefix(t *testing.T) {
	s := NewState()
	for _, k := range []string{"b/1", "a/2", "a/1", "c"} {
		s.Set(k, nil)
	}
	got := s.Keys("a/")
	if len(got) != 2 || got[0] != "a/1" || got[1] != "a/2" {
		t.Fatalf("keys = %v", got)
	}
	if s.Len() != 4 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestStateCloneIndependent(t *testing.T) {
	s := NewState()
	s.Set("k", []byte("orig"))
	c := s.Clone()
	c.Set("k", []byte("changed"))
	c.Set("new", []byte("x"))
	if v, _ := s.Get("k"); string(v) != "orig" {
		t.Fatal("clone mutated parent")
	}
	if _, ok := s.Get("new"); ok {
		t.Fatal("clone write leaked to parent")
	}
}

func TestStateDigestDeterministicOrderIndependent(t *testing.T) {
	a, b := NewState(), NewState()
	a.Set("x", []byte("1"))
	a.Set("y", []byte("2"))
	b.Set("y", []byte("2"))
	b.Set("x", []byte("1"))
	if a.Digest() != b.Digest() {
		t.Fatal("insertion order changed digest")
	}
	b.Set("z", []byte("3"))
	if a.Digest() == b.Digest() {
		t.Fatal("different states share digest")
	}
}

func TestStateDigestProperty(t *testing.T) {
	// Value is derived from the key so duplicate keys in the generated
	// input cannot make insertion order observable.
	valueOf := func(k string) []byte {
		d := crypto.Sum([]byte(k))
		return d[:]
	}
	if err := quick.Check(func(keys []string) bool {
		a, b := NewState(), NewState()
		for _, k := range keys {
			a.Set(k, valueOf(k))
		}
		for i := len(keys) - 1; i >= 0; i-- {
			b.Set(keys[i], valueOf(keys[i]))
		}
		return a.Digest() == b.Digest()
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNamespaceIsolation(t *testing.T) {
	s := NewState()
	n1 := Namespace(s, "c1")
	n2 := Namespace(s, "c2")
	n1.Set("k", []byte("one"))
	n2.Set("k", []byte("two"))
	v1, _ := n1.Get("k")
	v2, _ := n2.Get("k")
	if string(v1) != "one" || string(v2) != "two" {
		t.Fatalf("namespaces leaked: %q %q", v1, v2)
	}
	if keys := n1.Keys(""); len(keys) != 1 || keys[0] != "k" {
		t.Fatalf("n1 keys = %v", keys)
	}
	n1.Delete("k")
	if _, ok := n1.Get("k"); ok {
		t.Fatal("delete failed")
	}
	if _, ok := n2.Get("k"); !ok {
		t.Fatal("delete crossed namespaces")
	}
}

func TestOverlayCommitAndRollback(t *testing.T) {
	s := NewState()
	s.Set("base", []byte("b"))
	ov := NewOverlay(s)
	ov.Set("new", []byte("n"))
	ov.Delete("base")
	// Parent untouched before commit.
	if _, ok := s.Get("new"); ok {
		t.Fatal("overlay write visible before commit")
	}
	if _, ok := s.Get("base"); !ok {
		t.Fatal("overlay delete visible before commit")
	}
	// Overlay view is consistent.
	if _, ok := ov.Get("base"); ok {
		t.Fatal("overlay sees deleted key")
	}
	if v, ok := ov.Get("new"); !ok || string(v) != "n" {
		t.Fatal("overlay missing own write")
	}
	ov.Commit()
	if _, ok := s.Get("new"); !ok {
		t.Fatal("commit lost write")
	}
	if _, ok := s.Get("base"); ok {
		t.Fatal("commit lost delete")
	}
}

func TestOverlayKeysMerge(t *testing.T) {
	s := NewState()
	s.Set("a", nil)
	s.Set("b", nil)
	ov := NewOverlay(s)
	ov.Set("c", nil)
	ov.Delete("a")
	got := ov.Keys("")
	if len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Fatalf("overlay keys = %v", got)
	}
}

func TestOverlaySetAfterDelete(t *testing.T) {
	s := NewState()
	s.Set("k", []byte("old"))
	ov := NewOverlay(s)
	ov.Delete("k")
	ov.Set("k", []byte("new"))
	if v, ok := ov.Get("k"); !ok || string(v) != "new" {
		t.Fatalf("got %q, %v", v, ok)
	}
	ov.Commit()
	if v, _ := s.Get("k"); string(v) != "new" {
		t.Fatalf("committed %q", v)
	}
}

func TestRegistryDuplicate(t *testing.T) {
	r := NewRegistry()
	if err := r.Register(&echoContract{name: "c"}); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(&echoContract{name: "c"}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if names := r.Names(); len(names) != 1 || names[0] != "c" {
		t.Fatalf("names = %v", names)
	}
}

func TestEngineExecuteSuccess(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(&echoContract{name: "echo"})
	e := NewEngine(r)
	st := NewState()
	ctx := CallCtx{Height: 7, Caller: "alice", TxID: crypto.Sum([]byte("tx"))}
	events, err := e.Execute(ctx, st, Call{Contract: "echo", Method: "hi", Args: json.RawMessage(`{"x":1}`)})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Type != "Echo" {
		t.Fatalf("events = %+v", events)
	}
	if events[0].Height != 7 || events[0].Contract != "echo" || events[0].TxID != ctx.TxID {
		t.Fatalf("event provenance = %+v", events[0])
	}
	v, ok := Namespace(st, "echo").Get("last-caller")
	if !ok || string(v) != "alice" {
		t.Fatalf("state = %q, %v", v, ok)
	}
}

func TestEngineExecuteFailureRollsBack(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(&echoContract{name: "echo", failOn: "boom"})
	e := NewEngine(r)
	st := NewState()
	_, err := e.Execute(CallCtx{}, st, Call{Contract: "echo", Method: "boom"})
	if err == nil {
		t.Fatal("expected failure")
	}
	if st.Len() != 0 {
		t.Fatalf("failed call persisted state: %d keys", st.Len())
	}
}

func TestEngineUnknownContract(t *testing.T) {
	e := NewEngine(NewRegistry())
	_, err := e.Execute(CallCtx{}, NewState(), Call{Contract: "ghost"})
	if !errors.Is(err, ErrUnknownContract) {
		t.Fatalf("got %v", err)
	}
}

func TestEngineOnBlockHooks(t *testing.T) {
	r := NewRegistry()
	hook := &echoContract{name: "h", onBlock: func(height uint64, st StateDB) []Event {
		st.Set("height-seen", []byte{byte(height)})
		return []Event{{Type: "Tick"}}
	}}
	r.MustRegister(hook)
	r.MustRegister(&KVContract{ContractName: "kv"}) // no hook: must be skipped
	e := NewEngine(r)
	st := NewState()
	events := e.OnBlock(5, time.Unix(0, 0), st)
	if len(events) != 1 || events[0].Type != "Tick" || events[0].Height != 5 || events[0].Contract != "h" {
		t.Fatalf("events = %+v", events)
	}
	if v, ok := Namespace(st, "h").Get("height-seen"); !ok || v[0] != 5 {
		t.Fatal("hook state write lost")
	}
}

func TestCallEncodeStable(t *testing.T) {
	c := Call{Contract: "x", Method: "m", Args: json.RawMessage(`{"a":1}`)}
	if string(c.Encode()) != string(c.Encode()) {
		t.Fatal("Encode unstable")
	}
}
