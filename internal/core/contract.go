package core

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"drams/internal/contract"
	"drams/internal/crypto"
	"drams/internal/merkle"
)

// ContractName is the on-chain address of the DRAMS log-match contract.
const ContractName = "drams.logmatch"

// Contract event types.
const (
	EventAlert     = "Alert"
	EventMatched   = "Matched"
	EventLogStored = "LogStored"
	EventPolicy    = "PolicyAnnounced"
	EventVerdict   = "VerdictStored"
)

// Contract method names.
const (
	MethodLog = "log"
	// MethodLogBatch anchors a whole flush window of records under one
	// Merkle root in a single transaction (see LogBatch).
	MethodLogBatch = "logbatch"
	MethodVerdict  = "verdict"
	MethodPolicy   = "policy"
)

// MatchConfig parameterises the log-match contract. All federation nodes
// must deploy it with identical values (it is consensus logic).
type MatchConfig struct {
	// TimeoutBlocks is Δ: how many blocks after the first record of a
	// request the full record set must be present (check M3).
	TimeoutBlocks uint64
	// PAP is the only identity allowed to announce policy digests.
	PAP string
	// Analyser is the only identity allowed to submit verdicts.
	Analyser string
	// RequireVerdict makes a missing analyser verdict at timeout an
	// AlertVerdictMissing.
	RequireVerdict bool
	// PolicyContract names the policy lifecycle contract whose state the
	// M6 check consults (cross-contract read) for the active version and
	// anchored digests. While that contract has no active policy — or when
	// the field is empty — M6 falls back to the digests announced through
	// this contract's own legacy "policy" method.
	PolicyContract string
}

// LogMatchContract is the smart contract storing and comparing logs
// (paper §II). It is deterministic: all inputs come from transactions and
// block context.
type LogMatchContract struct {
	cfg MatchConfig
}

var (
	_ contract.Contract  = (*LogMatchContract)(nil)
	_ contract.BlockHook = (*LogMatchContract)(nil)
)

// NewLogMatchContract builds the contract with the given parameters.
func NewLogMatchContract(cfg MatchConfig) *LogMatchContract {
	if cfg.TimeoutBlocks == 0 {
		cfg.TimeoutBlocks = 5
	}
	return &LogMatchContract{cfg: cfg}
}

// Name implements contract.Contract.
func (lm *LogMatchContract) Name() string { return ContractName }

// State keys.
func recKey(reqID string, kind LogKind) string { return fmt.Sprintf("rec/%s/%s", reqID, kind) }
func verdictKey(reqID string) string           { return "verdict/" + reqID }
func doneKey(reqID string) string              { return "done/" + reqID }
func alertedKey(reqID string, t AlertType) string {
	return fmt.Sprintf("alerted/%s/%s", reqID, t)
}
func deadlineKey(due uint64, reqID string) string {
	return fmt.Sprintf("deadline/%016x/%s", due, reqID)
}
func deadlineSetKey(reqID string) string { return "deadline-set/" + reqID }
func policyKey(version string) string    { return "policy/v/" + version }

const policyActiveKey = "policy/active"

// Execute implements contract.Contract.
func (lm *LogMatchContract) Execute(ctx contract.CallCtx, st contract.StateDB, call contract.Call) ([]contract.Event, error) {
	switch call.Method {
	case MethodLog:
		return lm.execLog(ctx, st, call.Args)
	case MethodLogBatch:
		return lm.execLogBatch(ctx, st, call.Args)
	case MethodVerdict:
		return lm.execVerdict(ctx, st, call.Args)
	case MethodPolicy:
		return lm.execPolicy(ctx, st, call.Args)
	default:
		return nil, fmt.Errorf("%w: %q", contract.ErrUnknownMethod, call.Method)
	}
}

func (lm *LogMatchContract) execLog(ctx contract.CallCtx, st contract.StateDB, args []byte) ([]contract.Event, error) {
	rec, err := DecodeLogRecord(args)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", contract.ErrBadArgs, err)
	}
	if err := rec.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", contract.ErrBadArgs, err)
	}
	events, stored := lm.storeRecord(ctx, st, rec, rec.Encode())
	if stored {
		events = append(events, lm.runChecks(ctx, st, rec.ReqID, ctx.Height)...)
	}
	return events, nil
}

// storeRecord applies one validated record: duplicate and equivocation
// handling, storage, M3 deadline arming and the LogStored event.
// eventPayload is what the event carries — the plain record for
// single-record transactions, the proof-bearing envelope for batched ones.
// stored=false means the record was an idempotent duplicate or an
// equivocation attempt (the original is kept) and no checks should run.
func (lm *LogMatchContract) storeRecord(ctx contract.CallCtx, st contract.StateDB, rec LogRecord, eventPayload []byte) (events []contract.Event, stored bool) {
	key := recKey(rec.ReqID, rec.Kind)
	enc := rec.Encode()
	if existing, ok := st.Get(key); ok {
		if string(existing) == string(enc) {
			return nil, false // idempotent duplicate (client retry)
		}
		// Conflicting second record for the same interception point.
		return lm.alert(st, Alert{
			Type: AlertEquivocation, ReqID: rec.ReqID, Tenant: rec.Tenant, Height: ctx.Height,
			Detail: fmt.Sprintf("conflicting %s records from %s", rec.Kind, ctx.Caller),
		}), false // keep the original record
	}
	st.Set(key, enc)
	events = append(events, contract.Event{Type: EventLogStored, Payload: eventPayload})

	// Arm the M3 deadline on the first record of the request.
	if _, ok := st.Get(deadlineSetKey(rec.ReqID)); !ok {
		st.Set(deadlineSetKey(rec.ReqID), []byte("1"))
		st.Set(deadlineKey(ctx.Height+lm.cfg.TimeoutBlocks, rec.ReqID), []byte("1"))
	}
	return events, true
}

// execLogBatch applies one Merkle-anchored window of records. The root is
// recomputed from the submitted records — a batch whose root does not bind
// exactly its records is rejected, so anchoring is as tamper-evident as
// individual submissions while costing one signature verification and one
// transaction per window. Each stored record's LogStored event carries a
// membership proof for off-chain verification; the matching checks run once
// per distinct request the batch advanced (they are functions of stored
// state, so one pass after all of a request's records landed is equivalent
// to a pass after each).
func (lm *LogMatchContract) execLogBatch(ctx contract.CallCtx, st contract.StateDB, args []byte) ([]contract.Event, error) {
	lb, err := DecodeLogBatch(args)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", contract.ErrBadArgs, err)
	}
	if len(lb.Records) == 0 {
		return nil, fmt.Errorf("%w: empty log batch", contract.ErrBadArgs)
	}
	if len(lb.Records) > MaxLogBatch {
		return nil, fmt.Errorf("%w: batch of %d records exceeds limit %d",
			contract.ErrBadArgs, len(lb.Records), MaxLogBatch)
	}
	leaves := make([][]byte, len(lb.Records))
	for i := range lb.Records {
		if err := lb.Records[i].Validate(); err != nil {
			return nil, fmt.Errorf("%w: record %d: %v", contract.ErrBadArgs, i, err)
		}
		leaves[i] = lb.Records[i].Encode()
	}
	tree, err := merkle.Build(leaves)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", contract.ErrBadArgs, err)
	}
	if tree.Root() != lb.Root {
		return nil, fmt.Errorf("%w: claimed batch root %s does not match records (computed %s)",
			contract.ErrBadArgs, lb.Root.Short(), tree.Root().Short())
	}
	st.Set(batchKey(lb.Root), []byte(strconv.Itoa(len(lb.Records))))

	var events []contract.Event
	var order []string
	touched := make(map[string]bool)
	for i := range lb.Records {
		proof, perr := tree.Prove(i)
		if perr != nil {
			return nil, fmt.Errorf("%w: %v", contract.ErrBadArgs, perr)
		}
		payload := BatchedRecord{Record: lb.Records[i], Root: lb.Root, Index: i, Proof: proof}.Encode()
		evs, stored := lm.storeRecord(ctx, st, lb.Records[i], payload)
		events = append(events, evs...)
		if stored && !touched[lb.Records[i].ReqID] {
			touched[lb.Records[i].ReqID] = true
			order = append(order, lb.Records[i].ReqID)
		}
	}
	for _, reqID := range order {
		events = append(events, lm.runChecks(ctx, st, reqID, ctx.Height)...)
	}
	return events, nil
}

func (lm *LogMatchContract) execVerdict(ctx contract.CallCtx, st contract.StateDB, args []byte) ([]contract.Event, error) {
	if lm.cfg.Analyser != "" && ctx.Caller != lm.cfg.Analyser {
		return nil, fmt.Errorf("core: verdict from %q, only %q may submit verdicts", ctx.Caller, lm.cfg.Analyser)
	}
	v, err := DecodeVerdict(args)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", contract.ErrBadArgs, err)
	}
	if v.ReqID == "" || v.ExpectedTag.IsZero() {
		return nil, fmt.Errorf("%w: incomplete verdict", contract.ErrBadArgs)
	}
	enc := v.Encode()
	if existing, ok := st.Get(verdictKey(v.ReqID)); ok && string(existing) != string(enc) {
		return lm.alert(st, Alert{
			Type: AlertEquivocation, ReqID: v.ReqID, Height: ctx.Height,
			Detail: "conflicting analyser verdicts",
		}), nil
	}
	st.Set(verdictKey(v.ReqID), enc)
	events := []contract.Event{{Type: EventVerdict, Payload: enc}}
	events = append(events, lm.runChecks(ctx, st, v.ReqID, ctx.Height)...)
	return events, nil
}

func (lm *LogMatchContract) execPolicy(ctx contract.CallCtx, st contract.StateDB, args []byte) ([]contract.Event, error) {
	if lm.cfg.PAP != "" && ctx.Caller != lm.cfg.PAP {
		return nil, fmt.Errorf("core: policy announcement from %q, only %q may announce", ctx.Caller, lm.cfg.PAP)
	}
	var pa PolicyAnnouncement
	if err := json.Unmarshal(args, &pa); err != nil {
		return nil, fmt.Errorf("%w: %v", contract.ErrBadArgs, err)
	}
	if pa.Version == "" || pa.Digest.IsZero() {
		return nil, fmt.Errorf("%w: incomplete policy announcement", contract.ErrBadArgs)
	}
	if existing, ok := st.Get(policyKey(pa.Version)); ok && string(existing) != pa.Digest.String() {
		return nil, fmt.Errorf("core: policy version %q already anchored with different digest", pa.Version)
	}
	st.Set(policyKey(pa.Version), []byte(pa.Digest.String()))
	if pa.Active {
		st.Set(policyActiveKey, []byte(pa.Version))
	}
	return []contract.Event{{Type: EventPolicy, Payload: args}}, nil
}

// checkM6Policy computes the M6 verdict for one pdp.response record,
// returning the alert to raise (ok=false means the record is clean).
func (lm *LogMatchContract) checkM6Policy(ctx contract.CallCtx, st contract.StateDB, pdpResp LogRecord, reqID string, height uint64) (Alert, bool) {
	version := pdpResp.PolicyVersion

	// Preferred anchor: the policy lifecycle contract's state, read
	// cross-contract under whatever name it was registered with.
	if lm.cfg.PolicyContract != "" && ctx.Cross != nil {
		pst := crossState{cross: ctx.Cross, name: lm.cfg.PolicyContract}
		if activeVer, _, haveActive := ReadActivePolicy(pst); haveActive {
			anchored, haveAnchor := ReadPolicyDigest(pst, version)
			switch {
			case !haveAnchor:
				return Alert{
					Type: AlertPolicyTampered, ReqID: reqID, Tenant: pdpResp.Tenant, Height: height,
					Detail: fmt.Sprintf("PDP claims policy version %q which is not anchored", version),
				}, true
			case anchored != pdpResp.PolicyDigest:
				return Alert{
					Type: AlertPolicyTampered, ReqID: reqID, Tenant: pdpResp.Tenant, Height: height,
					Detail: fmt.Sprintf("PDP policy digest %s differs from anchored digest for version %q",
						pdpResp.PolicyDigest.Short(), version),
				}, true
			case version != activeVer:
				// Around a height-gated flip, decisions evaluated just
				// before activation log just after it. A superseded version
				// stays acceptable for the Δ window (the same bound M3
				// uses); anything older — or never activated — alerts.
				if deact, ok := ReadPolicyDeactivatedAt(pst, version); ok && height <= deact+lm.cfg.TimeoutBlocks {
					return Alert{}, false
				}
				return Alert{
					Type: AlertPolicyTampered, ReqID: reqID, Tenant: pdpResp.Tenant, Height: height,
					Detail: fmt.Sprintf("PDP evaluated version %q but active version is %q",
						version, activeVer),
				}, true
			}
			return Alert{}, false
		}
	}

	// Legacy anchor: digests announced through this contract's own
	// "policy" method.
	activeVer, haveActive := st.Get(policyActiveKey)
	anchored, haveAnchor := st.Get(policyKey(version))
	switch {
	case !haveActive || !haveAnchor:
		return Alert{
			Type: AlertPolicyTampered, ReqID: reqID, Tenant: pdpResp.Tenant, Height: height,
			Detail: fmt.Sprintf("PDP claims policy version %q which is not anchored", version),
		}, true
	case string(activeVer) != version:
		return Alert{
			Type: AlertPolicyTampered, ReqID: reqID, Tenant: pdpResp.Tenant, Height: height,
			Detail: fmt.Sprintf("PDP evaluated version %q but active version is %q",
				version, activeVer),
		}, true
	case string(anchored) != pdpResp.PolicyDigest.String():
		return Alert{
			Type: AlertPolicyTampered, ReqID: reqID, Tenant: pdpResp.Tenant, Height: height,
			Detail: fmt.Sprintf("PDP policy digest %s differs from anchored digest for version %q",
				pdpResp.PolicyDigest.Short(), version),
		}, true
	}
	return Alert{}, false
}

// alert records and emits an alert once per (request, type).
func (lm *LogMatchContract) alert(st contract.StateDB, a Alert) []contract.Event {
	k := alertedKey(a.ReqID, a.Type)
	if _, ok := st.Get(k); ok {
		return nil
	}
	st.Set(k, []byte("1"))
	return []contract.Event{{Type: EventAlert, Payload: a.Encode()}}
}

// loadRecord fetches a stored record.
func loadRecord(st contract.StateDB, reqID string, kind LogKind) (LogRecord, bool) {
	b, ok := st.Get(recKey(reqID, kind))
	if !ok {
		return LogRecord{}, false
	}
	rec, err := DecodeLogRecord(b)
	if err != nil {
		return LogRecord{}, false
	}
	return rec, true
}

// runChecks executes M1, M2, M4, M5, M6 for a request with the currently
// available records, and emits Matched when the exchange is complete and
// clean.
func (lm *LogMatchContract) runChecks(ctx contract.CallCtx, st contract.StateDB, reqID string, height uint64) []contract.Event {
	var events []contract.Event

	pepReq, havePepReq := loadRecord(st, reqID, KindPEPRequest)
	pdpReq, havePdpReq := loadRecord(st, reqID, KindPDPRequest)
	pdpResp, havePdpResp := loadRecord(st, reqID, KindPDPResponse)
	pepResp, havePepResp := loadRecord(st, reqID, KindPEPResponse)

	// M1: request integrity in transit.
	if havePepReq && havePdpReq && pepReq.ReqDigest != pdpReq.ReqDigest {
		events = append(events, lm.alert(st, Alert{
			Type: AlertRequestTampered, ReqID: reqID, Tenant: pepReq.Tenant, Height: height,
			Detail: fmt.Sprintf("request digest at PEP egress %s != at PDP ingress %s",
				pepReq.ReqDigest.Short(), pdpReq.ReqDigest.Short()),
		})...)
	}

	// M2: response integrity in transit (content and decision).
	if havePdpResp && havePepResp {
		if pdpResp.RespDigest != pepResp.RespDigest || pdpResp.DecisionTag != pepResp.DecisionTag {
			events = append(events, lm.alert(st, Alert{
				Type: AlertResponseTampered, ReqID: reqID, Tenant: pepResp.Tenant, Height: height,
				Detail: fmt.Sprintf("response at PDP egress %s/%s != at PEP ingress %s/%s",
					pdpResp.RespDigest.Short(), pdpResp.DecisionTag.Short(),
					pepResp.RespDigest.Short(), pepResp.DecisionTag.Short()),
			})...)
		}
	}

	// M4: enforcement correctness (what the PEP did vs. what it received).
	if havePepResp && pepResp.EnforcedTag != pepResp.DecisionTag {
		events = append(events, lm.alert(st, Alert{
			Type: AlertEnforcementMismatch, ReqID: reqID, Tenant: pepResp.Tenant, Height: height,
			Detail: fmt.Sprintf("PEP enforced %s but received decision %s",
				pepResp.EnforcedTag.Short(), pepResp.DecisionTag.Short()),
		})...)
	}

	// M5: decision correctness against the analyser's expectation.
	var verdict Verdict
	haveVerdict := false
	if b, ok := st.Get(verdictKey(reqID)); ok {
		if v, err := DecodeVerdict(b); err == nil {
			verdict = v
			haveVerdict = true
		}
	}
	if haveVerdict && havePdpResp && verdict.ExpectedTag != pdpResp.DecisionTag {
		events = append(events, lm.alert(st, Alert{
			Type: AlertDecisionIncorrect, ReqID: reqID, Tenant: pdpResp.Tenant, Height: height,
			Detail: fmt.Sprintf("PDP decision tag %s differs from expected %s (policy %s)",
				pdpResp.DecisionTag.Short(), verdict.ExpectedTag.Short(), verdict.PolicyDigest.Short()),
		})...)
	}

	// M6: policy integrity — the PDP must have evaluated the anchored
	// digest of the active version. With a policy lifecycle contract
	// configured and holding an active policy, its chain-replicated state
	// is the trust anchor; otherwise the legacy PAP announcements stored
	// in this contract apply.
	if havePdpResp {
		if a, ok := lm.checkM6Policy(ctx, st, pdpResp, reqID, height); ok {
			events = append(events, lm.alert(st, a)...)
		}
	}

	// Completion: all four legs present, verdict present if required, and
	// no alert raised for this request.
	complete := havePepReq && havePdpReq && havePdpResp && havePepResp &&
		(haveVerdict || !lm.cfg.RequireVerdict)
	if complete {
		if _, done := st.Get(doneKey(reqID)); !done && len(st.Keys("alerted/"+reqID+"/")) == 0 {
			st.Set(doneKey(reqID), []byte("1"))
			payload, _ := json.Marshal(map[string]any{"reqId": reqID, "height": height})
			events = append(events, contract.Event{Type: EventMatched, Payload: payload})
		}
	}
	return events
}

// OnBlock implements contract.BlockHook: it fires M3 timeout alerts for
// requests whose record set is still incomplete when their deadline passes.
func (lm *LogMatchContract) OnBlock(height uint64, blockTime time.Time, st contract.StateDB) []contract.Event {
	var events []contract.Event
	for _, key := range st.Keys("deadline/") {
		rest := strings.TrimPrefix(key, "deadline/")
		slash := strings.IndexByte(rest, '/')
		if slash < 0 {
			st.Delete(key)
			continue
		}
		var due uint64
		if _, err := fmt.Sscanf(rest[:slash], "%x", &due); err != nil {
			st.Delete(key)
			continue
		}
		if due > height {
			break // keys are sorted by due height
		}
		reqID := rest[slash+1:]
		st.Delete(key)

		if _, done := st.Get(doneKey(reqID)); done {
			continue
		}
		var missing []string
		tenant := ""
		for _, kind := range LogKinds() {
			rec, ok := loadRecord(st, reqID, kind)
			if !ok {
				missing = append(missing, string(kind))
			} else if tenant == "" {
				tenant = rec.Tenant
			}
		}
		if len(missing) > 0 {
			events = append(events, lm.alert(st, Alert{
				Type: AlertMessageSuppressed, ReqID: reqID, Tenant: tenant, Height: height,
				Detail: fmt.Sprintf("missing after %d blocks: %s", lm.cfg.TimeoutBlocks, strings.Join(missing, ", ")),
			})...)
			continue
		}
		if lm.cfg.RequireVerdict {
			if _, ok := st.Get(verdictKey(reqID)); !ok {
				events = append(events, lm.alert(st, Alert{
					Type: AlertVerdictMissing, ReqID: reqID, Tenant: tenant, Height: height,
					Detail: fmt.Sprintf("no analyser verdict after %d blocks", lm.cfg.TimeoutBlocks),
				})...)
			}
		}
	}
	return events
}

// ReadPolicyAnchor reads an anchored policy digest from a namespaced state
// view (off-chain readers go through Chain.ReadState).
func ReadPolicyAnchor(st contract.StateDB, version string) (crypto.Digest, bool) {
	b, ok := st.Get(policyKey(version))
	if !ok {
		return crypto.Digest{}, false
	}
	d, err := crypto.ParseDigest(string(b))
	if err != nil {
		return crypto.Digest{}, false
	}
	return d, true
}

// ReadActivePolicyVersion reads the active policy version from state.
func ReadActivePolicyVersion(st contract.StateDB) (string, bool) {
	b, ok := st.Get(policyActiveKey)
	if !ok {
		return "", false
	}
	return string(b), true
}

// ReadStoredRecord reads a log record from state.
func ReadStoredRecord(st contract.StateDB, reqID string, kind LogKind) (LogRecord, bool) {
	return loadRecord(st, reqID, kind)
}

// ReadDone reports whether a request completed cleanly.
func ReadDone(st contract.StateDB, reqID string) bool {
	_, ok := st.Get(doneKey(reqID))
	return ok
}
