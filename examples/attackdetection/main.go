// Attack detection: executes the paper's full §I threat model against a
// monitored federation and prints the detection matrix — which alert caught
// which attack and how fast (experiment E5, interactively).
//
//	go run ./examples/attackdetection
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"drams"
	"drams/internal/attack"
	"drams/internal/xacml"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "attackdetection:", err)
		os.Exit(1)
	}
}

func policy() *xacml.PolicySet {
	doctorRead := &xacml.Rule{
		ID: "doctor-read", Effect: xacml.EffectPermit,
		Target: xacml.Target{AnyOf: []xacml.AnyOf{{AllOf: []xacml.AllOf{{Matches: []xacml.Match{
			{Op: xacml.CmpEq, Attr: xacml.Designator{Cat: xacml.CatSubject, ID: "role"}, Lit: xacml.String("doctor")},
			{Op: xacml.CmpEq, Attr: xacml.Designator{Cat: xacml.CatAction, ID: "op"}, Lit: xacml.String("read")},
		}}}}}},
	}
	deny := &xacml.Rule{ID: "default-deny", Effect: xacml.EffectDeny}
	return &xacml.PolicySet{ID: "root", Version: "v1", Alg: xacml.DenyUnlessPermit,
		Items: []xacml.PolicyItem{{Policy: &xacml.Policy{ID: "p", Version: "1",
			Alg: xacml.FirstApplicable, Rules: []*xacml.Rule{doctorRead, deny}}}}}
}

func run() error {
	dep, err := drams.Open(policy(),
		drams.WithDifficulty(8),
		drams.WithTimeoutBlocks(20),
		drams.WithEmptyBlockInterval(15*time.Millisecond),
		drams.WithSeed(5),
	)
	if err != nil {
		return err
	}
	defer dep.Close()
	victim, err := dep.Client("tenant-1")
	if err != nil {
		return err
	}

	escalate := func(req *xacml.Request) *xacml.Request {
		out := xacml.NewRequest(req.ID)
		out.Add(xacml.CatSubject, "role", xacml.String("doctor"))
		out.Add(xacml.CatAction, "op", xacml.String("read"))
		return out
	}

	fmt.Println("attack detection matrix (victim: tenant-1, attacker goal: grant an intern's denied read)")
	fmt.Println()
	fmt.Printf("%-42s %-26s %-10s %s\n", "attack", "alert raised", "latency", "blocks")
	fmt.Printf("%-42s %-26s %-10s %s\n", "------", "------------", "-------", "------")

	for _, sc := range attack.Catalogue(escalate) {
		cleanup, err := sc.Install(dep, "tenant-1")
		if err != nil {
			return err
		}
		req := victim.NewRequest().
			Add(xacml.CatSubject, "role", xacml.String("intern")).
			Add(xacml.CatAction, "op", xacml.String("read"))
		_, startHeight := dep.InfraNode().Chain().Head()

		// Subscribe to exactly the alerts this attack is expected to
		// raise, before the malicious request is even submitted.
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		alerts, stop, err := dep.Alerts(ctx, drams.AlertFilter{ReqID: req.ID, Types: sc.Expected})
		if err != nil {
			cancel()
			return err
		}
		t0 := time.Now()
		_, _ = victim.Decide(ctx, req) // suppression attacks error by design

		detectedBy := "NOT DETECTED"
		latency := time.Duration(0)
		var blocks uint64
		select {
		case alert := <-alerts:
			detectedBy = string(alert.Type)
			latency = time.Since(t0)
			blocks = alert.Height - startHeight
		case <-ctx.Done():
		}
		stop()
		cancel()
		cleanup()
		fmt.Printf("%-42s %-26s %-10s %d\n",
			sc.ID+" "+sc.Name, detectedBy, latency.Round(time.Millisecond), blocks)
	}

	// A8: outsider tries to forge a log record.
	forge := attack.AttemptLogForgery(dep.InfraNode(), "forged-1")
	verdict := "ACCEPTED (!)"
	if forge.Rejected {
		verdict = "rejected at signature gate"
	}
	fmt.Printf("%-42s %-26s %-10s %s\n", "A8 log forgery (outsider)", verdict, "-", "-")

	// Control: clean traffic raises nothing.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	req := victim.NewRequest().
		Add(xacml.CatSubject, "role", xacml.String("doctor")).
		Add(xacml.CatAction, "op", xacml.String("read"))
	if _, err := victim.Decide(ctx, req); err != nil {
		return err
	}
	if err := dep.WaitForMatched(ctx, req.ID); err != nil {
		return err
	}
	fmt.Printf("%-42s %-26s\n", "control (no attack)", fmt.Sprintf("%d false alerts", len(dep.Monitor.AlertsFor(req.ID))))
	return nil
}
