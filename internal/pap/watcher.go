package pap

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"drams/internal/blockchain"
	"drams/internal/contract"
	"drams/internal/core"
	"drams/internal/crypto"
	"drams/internal/metrics"
	"drams/internal/xacml"
)

// EventKind classifies a watcher notification.
type EventKind string

// Watcher event kinds.
const (
	// EventStaged: a version was announced, verified against its anchored
	// digest and parsed; it is ready for the height-gated flip.
	EventStaged EventKind = "staged"
	// EventActivated: the chain reached the activation height and the
	// local PDP/PRP were hot-reloaded (on PDP-less members: the flip was
	// acknowledged).
	EventActivated EventKind = "activated"
	// EventRejected: a version failed local verification (digest mismatch
	// against the anchored root, unparseable bytes) or an on-chain
	// conflict was flagged; nothing was activated.
	EventRejected EventKind = "rejected"
)

// Event is one watcher notification, delivered on the watcher goroutine.
type Event struct {
	Kind    EventKind
	Version string
	Digest  crypto.Digest
	// Height is the chain height of the underlying on-chain event.
	Height uint64
	// Err explains a rejection.
	Err string
}

// WatcherStats snapshots the watcher counters (the PAP/PDP reload counters
// surfaced through Deployment.PolicyStats).
type WatcherStats struct {
	// Version is the last version this member activated ("" before the
	// first activation).
	Version string
	// Height is the chain height of the last activation.
	Height uint64
	// Staged / Activations / Rejections count watcher transitions.
	Staged      int64
	Activations int64
	Rejections  int64
	// EventsDropped is how many chain-event notifications this watcher's
	// subscription missed to a full buffer; Resyncs counts the chain-state
	// reconciliations triggered to recover from them.
	EventsDropped int64
	Resyncs       int64
}

// WatcherConfig configures a Watcher.
type WatcherConfig struct {
	// Node is the member's chain node (required).
	Node *blockchain.Node
	// PDP, when the member hosts one, is hot-reloaded at every activation
	// (atomic swap + decision-cache purge).
	PDP *xacml.PDP
	// PRP, when present, mirrors the chain's version store: staged
	// versions are ensured into it and the activation pointer follows the
	// chain.
	PRP *xacml.PRP
	// OnEvent, when set, receives every watcher notification (monitor
	// wiring, daemon logging). Called on the watcher goroutine — keep it
	// non-blocking.
	OnEvent func(Event)
	// EventBuffer sizes the chain-event subscription (<= 0 uses the node
	// default). Event delivery is best effort — the node drops on a full
	// buffer — so the watcher resyncs from chain state whenever its
	// subscription reports drops.
	EventBuffer int
}

// Watcher tails a member's chain events and applies the policy lifecycle
// locally: stage on announcement, verify digests, atomically flip the PDP
// at the activation height, and surface every transition. On-chain state is
// the ground truth — Sync recovers from missed events (restart, slow
// subscriber), and activations are deduplicated so at-least-once event
// delivery (reorgs) cannot double-fire.
type Watcher struct {
	cfg WatcherConfig

	mu         sync.Mutex
	staged     map[string]*stagedPolicy // version → verified parsed set, until activated
	current    string                   // last version applied locally
	curHeight  uint64
	applied    map[appliedKey]bool // dedupe at-least-once activations (bounded)
	appliedQ   []appliedKey        // insertion order, for pruning
	waiters    map[uint64]chan struct{}
	nextWaiter uint64

	stagedCnt   metrics.Counter
	activations metrics.Counter
	rejections  metrics.Counter
	resyncs     metrics.Counter
	dropped     metrics.Counter

	seenDrops int64 // last subscription drop count acted upon (watcher goroutine only)

	stopOnce  sync.Once
	stop      chan struct{}
	wg        sync.WaitGroup
	cancelSub func()
}

type stagedPolicy struct {
	set    *xacml.PolicySet
	digest crypto.Digest
}

type appliedKey struct {
	version string
	height  uint64
}

// NewWatcher builds a watcher (not yet started).
func NewWatcher(cfg WatcherConfig) (*Watcher, error) {
	if cfg.Node == nil {
		return nil, fmt.Errorf("pap: watcher needs a node")
	}
	return &Watcher{
		cfg:     cfg,
		staged:  make(map[string]*stagedPolicy),
		applied: make(map[appliedKey]bool),
		waiters: make(map[uint64]chan struct{}),
		stop:    make(chan struct{}),
	}, nil
}

// appliedBound caps the at-least-once dedup set; only recent activations
// can be re-delivered (reorg window), so a small bound suffices.
const appliedBound = 64

// dropCheckInterval paces the fallback drop scan: drops are normally
// noticed on the next delivered event, but if the chain goes quiet right
// after an overflow the periodic check still recovers the watcher.
const dropCheckInterval = time.Second

// Start subscribes to chain events and replays the current on-chain policy
// state (Sync), so a member that boots — or restarts from its data dir —
// after activations converges immediately. Event delivery is best effort;
// whenever the subscription reports dropped notifications the watcher
// reconciles from chain state instead of trusting the gap.
func (w *Watcher) Start() {
	sub := w.cfg.Node.Subscribe(w.cfg.EventBuffer)
	w.cancelSub = sub.Cancel
	w.Sync()
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		tick := time.NewTicker(dropCheckInterval)
		defer tick.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-tick.C:
				w.observeDrops(sub.Dropped())
			case note, ok := <-sub.C:
				if !ok {
					return
				}
				for _, e := range note.Events {
					if e.Contract == core.PolicyContractName {
						w.handleEvent(e.Type, e.Payload, note.Height)
					}
				}
				w.observeDrops(sub.Dropped())
			}
		}
	}()
}

// observeDrops reconciles with chain state when the event subscription
// reports notifications lost to a full buffer: any advance of the drop
// counter means an activation may have been missed, so the watcher resyncs
// (cheap when nothing changed — Sync dedupes against applied flips).
func (w *Watcher) observeDrops(dropped int64) {
	if dropped == w.seenDrops {
		return
	}
	w.dropped.Add(dropped - w.seenDrops)
	w.seenDrops = dropped
	w.resyncs.Inc()
	w.Sync()
}

// Stop halts the watcher.
func (w *Watcher) Stop() {
	w.stopOnce.Do(func() { close(w.stop) })
	if w.cancelSub != nil {
		w.cancelSub()
	}
	w.wg.Wait()
}

// Version returns the version this member last activated.
func (w *Watcher) Version() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.current
}

// Stats snapshots the watcher counters.
func (w *Watcher) Stats() WatcherStats {
	w.mu.Lock()
	version, height := w.current, w.curHeight
	w.mu.Unlock()
	return WatcherStats{
		Version:       version,
		Height:        height,
		Staged:        w.stagedCnt.Value(),
		Activations:   w.activations.Value(),
		Rejections:    w.rejections.Value(),
		EventsDropped: w.dropped.Value(),
		Resyncs:       w.resyncs.Value(),
	}
}

// WaitForVersion blocks until this member has activated the given version
// (already-active versions return immediately).
func (w *Watcher) WaitForVersion(ctx context.Context, version string) error {
	for {
		w.mu.Lock()
		if w.current == version {
			w.mu.Unlock()
			return nil
		}
		armed := make(chan struct{})
		id := w.nextWaiter
		w.nextWaiter++
		w.waiters[id] = armed
		w.mu.Unlock()
		release := func() {
			w.mu.Lock()
			delete(w.waiters, id)
			w.mu.Unlock()
		}
		select {
		case <-armed:
		case <-w.stop:
			release()
			return fmt.Errorf("pap: wait for policy %q: watcher stopped", version)
		case <-ctx.Done():
			release()
			return fmt.Errorf("pap: wait for policy %q: %w", version, ctx.Err())
		}
	}
}

// Sync reconciles with on-chain state: it applies the chain's active
// version if this member has not done so yet. Start calls it once; it is
// safe to call again at any time (e.g. after a partition heals).
func (w *Watcher) Sync() {
	var (
		version string
		digest  crypto.Digest
		ok      bool
		height  uint64
	)
	w.cfg.Node.Chain().ReadState(core.PolicyContractName, func(st contract.StateDB) {
		version, digest, ok = core.ReadActivePolicy(st)
		if !ok {
			return
		}
		// The true activation height comes from the on-chain history (its
		// last entry is the active version), so a buffered activation
		// event for the same flip dedupes against this Sync.
		if hist := core.ReadPolicyHistory(st); len(hist) > 0 {
			height = hist[len(hist)-1].Height
		}
	})
	if !ok {
		return
	}
	w.activate(version, digest, height)
}

func (w *Watcher) handleEvent(eventType string, payload []byte, height uint64) {
	switch eventType {
	case core.EventPolicyStaged:
		var act core.PolicyActivation
		if err := json.Unmarshal(payload, &act); err != nil {
			return
		}
		// act.Height is the scheduled activation height (the payload is a
		// PolicyActivation), not the announcement block's height.
		w.stage(act.Version, act.Digest, act.Height)
	case core.EventPolicyActivated:
		var act core.PolicyActivation
		if err := json.Unmarshal(payload, &act); err != nil {
			return
		}
		w.activate(act.Version, act.Digest, act.Height)
	case core.EventPolicyConflict:
		var body struct {
			Version string `json:"version"`
			By      string `json:"by"`
		}
		if err := json.Unmarshal(payload, &body); err != nil {
			return
		}
		w.reject(Event{
			Kind: EventRejected, Version: body.Version, Height: height,
			Err: fmt.Sprintf("conflicting digest for anchored version (by %s)", body.By),
		})
	}
}

// fetch loads, digest-verifies and parses a version from chain state.
func (w *Watcher) fetch(version string) (*stagedPolicy, error) {
	var (
		blob     []byte
		anchored crypto.Digest
		haveRec  bool
	)
	w.cfg.Node.Chain().ReadState(core.PolicyContractName, func(st contract.StateDB) {
		blob, _ = core.ReadPolicyBlob(st, version)
		anchored, haveRec = core.ReadPolicyDigest(st, version)
	})
	if blob == nil || !haveRec {
		return nil, fmt.Errorf("version %q not found in chain state", version)
	}
	// Verify the bytes against the anchored root before trusting them:
	// the consensus layer enforced this at proposal time, but the local
	// store is not consensus — recomputing keeps a tampered replica from
	// ever reaching the PDP.
	if got := crypto.Sum(blob); got != anchored {
		return nil, fmt.Errorf("stored bytes digest %s != anchored %s", got.Short(), anchored.Short())
	}
	ps, err := xacml.DecodePolicySet(blob)
	if err != nil {
		return nil, fmt.Errorf("stored policy does not parse: %v", err)
	}
	if ps.Version != version {
		return nil, fmt.Errorf("stored policy carries version %q", ps.Version)
	}
	return &stagedPolicy{set: ps, digest: anchored}, nil
}

// stage pre-verifies and parses an announced version so the activation
// flip later is a pure pointer swap.
func (w *Watcher) stage(version string, digest crypto.Digest, height uint64) {
	sp, err := w.fetch(version)
	if err != nil {
		w.reject(Event{Kind: EventRejected, Version: version, Digest: digest, Height: height, Err: err.Error()})
		return
	}
	w.mu.Lock()
	_, known := w.staged[version]
	w.staged[version] = sp
	w.mu.Unlock()
	if !known {
		w.stagedCnt.Inc()
		w.notify(Event{Kind: EventStaged, Version: version, Digest: sp.digest, Height: height})
	}
	if w.cfg.PRP != nil {
		_ = w.cfg.PRP.Ensure(sp.set)
	}
}

// activate flips this member to version: the staged parsed set (fetched
// from chain state when staging was missed) is atomically loaded into the
// PDP — which purges the decision cache in the same step — and the PRP
// pointer follows. The whole flip runs in one critical section, so a Sync
// racing the event goroutine applies each flip exactly once, at-least-once
// event deliveries dedupe, and a stale buffered activation (lower height
// than what this member already applied, e.g. after Sync caught up past
// it) can never downgrade the PDP.
func (w *Watcher) activate(version string, digest crypto.Digest, height uint64) {
	key := appliedKey{version, height}
	w.mu.Lock()
	if w.applied[key] || height < w.curHeight ||
		(w.current == version && w.curHeight >= height) {
		w.mu.Unlock()
		return
	}
	sp := w.staged[version]
	if sp == nil {
		var err error
		sp, err = w.fetch(version)
		if err != nil {
			w.mu.Unlock()
			w.reject(Event{Kind: EventRejected, Version: version, Digest: digest, Height: height, Err: err.Error()})
			return
		}
	}
	if !digest.IsZero() && sp.digest != digest {
		w.mu.Unlock()
		w.reject(Event{
			Kind: EventRejected, Version: version, Digest: digest, Height: height,
			Err: fmt.Sprintf("staged digest %s != activation digest %s", sp.digest.Short(), digest.Short()),
		})
		return
	}

	if w.cfg.PDP != nil {
		w.cfg.PDP.Load(sp.set)
	}
	if w.cfg.PRP != nil {
		_ = w.cfg.PRP.Ensure(sp.set)
		_ = w.cfg.PRP.Activate(version)
	}

	w.current = version
	w.curHeight = height
	// The parsed set served its purpose (the PRP keeps the authoritative
	// copy; a rollback re-fetches from chain state), and the dedup set is
	// bounded to the reorg-redelivery window.
	delete(w.staged, version)
	w.applied[key] = true
	w.appliedQ = append(w.appliedQ, key)
	for len(w.appliedQ) > appliedBound {
		delete(w.applied, w.appliedQ[0])
		w.appliedQ = w.appliedQ[1:]
	}
	waiters := w.waiters
	w.waiters = make(map[uint64]chan struct{})
	w.mu.Unlock()
	for _, ch := range waiters {
		close(ch)
	}
	w.activations.Inc()
	w.notify(Event{Kind: EventActivated, Version: version, Digest: sp.digest, Height: height})
}

func (w *Watcher) reject(ev Event) {
	w.rejections.Inc()
	w.notify(ev)
}

func (w *Watcher) notify(ev Event) {
	if w.cfg.OnEvent != nil {
		w.cfg.OnEvent(ev)
	}
}

// MonitorEvent converts a watcher notification into the synthetic monitor
// alert the operators' Alerts subscriptions see (core.AlertPolicyActivated
// / core.AlertPolicyRejected; staged transitions produce no alert).
func MonitorEvent(ev Event) (core.Alert, bool) {
	ref := fmt.Sprintf("%s@%d", ev.Version, ev.Height)
	switch ev.Kind {
	case EventActivated:
		return core.Alert{
			Type: core.AlertPolicyActivated, ReqID: ref, Height: ev.Height,
			Detail: fmt.Sprintf("policy %s activated (digest %s)", ev.Version, ev.Digest.Short()),
		}, true
	case EventRejected:
		return core.Alert{
			Type: core.AlertPolicyRejected, ReqID: ref, Height: ev.Height,
			Detail: fmt.Sprintf("policy %s rejected: %s", ev.Version, ev.Err),
		}, true
	}
	return core.Alert{}, false
}
