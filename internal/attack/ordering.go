package attack

import (
	"encoding/json"

	"drams/internal/core"
)

// Batch-boundary manipulation at the PEP/PDP seam (federation.Tamper.Batch).
//
// DecideBatch ships every probed request in one wire frame and the PDP
// answers positionally, so the batch boundary is an ordering surface: an
// adversary on the pipeline can permute, duplicate or drop items after the
// edge probes recorded the honest order. The monitors see through it —
// a permuted batch misaligns each request with another request's decision
// (digest/tag mismatch, M2 AlertResponseTampered); a shrunk batch fails the
// pipeline before any pep.response is logged (M3 AlertMessageSuppressed).

// ReverseBatch returns a Tamper.Batch hook reversing the wire order of the
// pipeline. With mixed-outcome batches every item receives some other
// item's decision.
func ReverseBatch() func(items []json.RawMessage) []json.RawMessage {
	return func(items []json.RawMessage) []json.RawMessage {
		out := make([]json.RawMessage, len(items))
		for i, it := range items {
			out[len(items)-1-i] = it
		}
		return out
	}
}

// DuplicateInBatch returns a Tamper.Batch hook overwriting item dst with a
// copy of item src: the count is preserved (so the pipeline completes) but
// dst's honest request is never evaluated — the PDP answers position dst
// with src's decision.
func DuplicateInBatch(src, dst int) func(items []json.RawMessage) []json.RawMessage {
	return func(items []json.RawMessage) []json.RawMessage {
		out := make([]json.RawMessage, len(items))
		copy(out, items)
		if src >= 0 && src < len(out) && dst >= 0 && dst < len(out) {
			out[dst] = out[src]
		}
		return out
	}
}

// DropFromBatch returns a Tamper.Batch hook removing item i from the wire
// batch. The PDP then answers with fewer items than the PEP sent, failing
// the whole pipeline: no pep.response is ever logged and M3 flags every
// request of the batch as suppressed.
func DropFromBatch(i int) func(items []json.RawMessage) []json.RawMessage {
	return func(items []json.RawMessage) []json.RawMessage {
		if i < 0 || i >= len(items) {
			return items
		}
		out := make([]json.RawMessage, 0, len(items)-1)
		out = append(out, items[:i]...)
		out = append(out, items[i+1:]...)
		return out
	}
}

// HoldRecords returns a ByzantineNode.DelayRecords predicate trapping log
// records of the given kind for the given request IDs — the anchoring-delay
// building block (e.g. hold a pdp.response past the M3 deadline, or past a
// policy rollout's M6 grace window, then release it stale).
func HoldRecords(kind core.LogKind, reqIDs ...string) func(core.LogRecord) bool {
	ids := make(map[string]bool, len(reqIDs))
	for _, id := range reqIDs {
		ids[id] = true
	}
	return func(rec core.LogRecord) bool {
		return rec.Kind == kind && ids[rec.ReqID]
	}
}
