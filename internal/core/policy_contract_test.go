package core

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"drams/internal/contract"
	"drams/internal/crypto"
	"drams/internal/xacml"
)

// policyEnv drives the policy contract (plus the log-match contract, so M6
// cross-reads can be exercised) directly through the engine.
type policyEnv struct {
	t      *testing.T
	engine *contract.Engine
	st     *contract.State
	height uint64
	txs    []appliedTx // for deterministic replay
}

type appliedTx struct {
	height uint64
	caller string
	call   contract.Call
}

func newPolicyEnv(t *testing.T) *policyEnv {
	t.Helper()
	reg := contract.NewRegistry()
	reg.MustRegister(&PolicyContract{PAP: "pap"})
	reg.MustRegister(NewLogMatchContract(MatchConfig{
		TimeoutBlocks: 5, PAP: "pap", PolicyContract: PolicyContractName,
	}))
	return &policyEnv{t: t, engine: contract.NewEngine(reg), st: contract.NewState(), height: 1}
}

func (e *policyEnv) call(caller, method string, args []byte) ([]contract.Event, error) {
	e.t.Helper()
	call := contract.Call{Contract: PolicyContractName, Method: method, Args: args}
	ctx := contract.CallCtx{Height: e.height, Caller: caller, TxID: crypto.Sum(args)}
	evs, err := e.engine.Execute(ctx, e.st, call)
	if err == nil {
		e.txs = append(e.txs, appliedTx{height: e.height, caller: caller, call: call})
	}
	return evs, err
}

func (e *policyEnv) onBlock() []contract.Event {
	evs := e.engine.OnBlock(e.height, time.Unix(int64(e.height), 0), e.st)
	e.height++
	return evs
}

func updateArgs(version string, due uint64) PolicyUpdate {
	ps := xacml.StandardPolicy(version)
	blob := ps.Encode()
	return PolicyUpdate{Version: version, Policy: blob, Digest: crypto.Sum(blob), ActivateHeight: due}
}

func eventTypes(evs []contract.Event) []string {
	out := make([]string, len(evs))
	for i, e := range evs {
		out[i] = e.Type
	}
	return out
}

func activeVersion(st contract.StateDB) string {
	ver, _, ok := ReadActivePolicy(contract.Namespace(st, PolicyContractName))
	if !ok {
		return ""
	}
	return ver
}

func TestPolicyContractScheduleAndActivate(t *testing.T) {
	e := newPolicyEnv(t)
	pu := updateArgs("v1", 3)
	evs, err := e.call("pap", MethodPolicyUpdate, pu.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Type != EventPolicyStaged {
		t.Fatalf("update events = %v", eventTypes(evs))
	}

	// Heights 1 and 2: nothing fires.
	if evs := e.onBlock(); len(evs) != 0 {
		t.Fatalf("height 1 events = %v", eventTypes(evs))
	}
	if got := activeVersion(e.st); got != "" {
		t.Fatalf("active before gate = %q", got)
	}
	if evs := e.onBlock(); len(evs) != 0 {
		t.Fatalf("height 2 events = %v", eventTypes(evs))
	}

	// Height 3: the gate opens.
	evs = e.onBlock()
	if len(evs) != 1 || evs[0].Type != EventPolicyActivated {
		t.Fatalf("height 3 events = %v", eventTypes(evs))
	}
	if got := activeVersion(e.st); got != "v1" {
		t.Fatalf("active = %q, want v1", got)
	}
	hist := ReadPolicyHistory(contract.Namespace(e.st, PolicyContractName))
	if len(hist) != 1 || hist[0].Version != "v1" || hist[0].Height != 3 {
		t.Fatalf("history = %+v", hist)
	}
}

func TestPolicyContractPastHeightActivatesAtCurrentBlock(t *testing.T) {
	e := newPolicyEnv(t)
	e.height = 7
	pu := updateArgs("v1", 0) // "immediately"
	if _, err := e.call("pap", MethodPolicyUpdate, pu.Encode()); err != nil {
		t.Fatal(err)
	}
	evs := e.onBlock() // block 7's boundary
	if len(evs) != 1 || evs[0].Type != EventPolicyActivated || evs[0].Height != 7 {
		t.Fatalf("events = %v at height %d", eventTypes(evs), e.height-1)
	}
}

func TestPolicyContractIdempotentResubmit(t *testing.T) {
	e := newPolicyEnv(t)
	pu := updateArgs("v1", 1)
	if _, err := e.call("pap", MethodPolicyUpdate, pu.Encode()); err != nil {
		t.Fatal(err)
	}
	// Re-submit with the same digest: the anchor is untouched, no
	// conflict, and the requested activation is (re-)scheduled.
	evs, err := e.call("pap", MethodPolicyUpdate, pu.Encode())
	if err != nil {
		t.Fatalf("idempotent re-submit failed: %v", err)
	}
	if len(evs) != 1 || evs[0].Type != EventPolicyStaged {
		t.Fatalf("re-submit events = %v", eventTypes(evs))
	}
	pst := contract.Namespace(e.st, PolicyContractName)
	if d, _ := ReadPolicyDigest(pst, "v1"); d != pu.Digest {
		t.Fatal("re-submit changed the anchor")
	}
	e.onBlock() // v1 activates once; the duplicate schedule no-ops
	if got := activeVersion(e.st); got != "v1" {
		t.Fatalf("active = %q", got)
	}
	if hist := ReadPolicyHistory(pst); len(hist) != 1 {
		t.Fatalf("history = %+v", hist)
	}

	// Re-publishing a superseded version (identical bytes) re-activates
	// it — the operator-friendly alternative to the activate method.
	if _, err := e.call("pap", MethodPolicyUpdate, updateArgs("v2", 2).Encode()); err != nil {
		t.Fatal(err)
	}
	e.onBlock()
	if got := activeVersion(e.st); got != "v2" {
		t.Fatalf("active = %q, want v2", got)
	}
	if _, err := e.call("pap", MethodPolicyUpdate, updateArgs("v1", 3).Encode()); err != nil {
		t.Fatal(err)
	}
	evs = e.onBlock()
	if len(evs) != 1 || evs[0].Type != EventPolicyActivated {
		t.Fatalf("re-publish activation events = %v", eventTypes(evs))
	}
	if got := activeVersion(e.st); got != "v1" {
		t.Fatalf("active after re-publish = %q, want v1", got)
	}
}

func TestPolicyContractConflictingDigestRejected(t *testing.T) {
	e := newPolicyEnv(t)
	if _, err := e.call("pap", MethodPolicyUpdate, updateArgs("v1", 1).Encode()); err != nil {
		t.Fatal(err)
	}
	before := e.st.Digest()

	// Same version, different content (still self-consistent digest): the
	// original anchor stays, and the attempt is flagged on-chain with an
	// AnchorConflict-style event.
	other := xacml.RestrictedPolicy("v1").Encode()
	conflict := PolicyUpdate{Version: "v1", Policy: other, Digest: crypto.Sum(other), ActivateHeight: 1}
	evs, err := e.call("pap", MethodPolicyUpdate, conflict.Encode())
	if err != nil {
		t.Fatalf("conflict tx should succeed (event-only): %v", err)
	}
	if len(evs) != 1 || evs[0].Type != EventPolicyConflict {
		t.Fatalf("conflict events = %v", eventTypes(evs))
	}
	if e.st.Digest() != before {
		t.Fatal("conflicting update mutated state")
	}
	pst := contract.Namespace(e.st, PolicyContractName)
	if d, _ := ReadPolicyDigest(pst, "v1"); d != crypto.Sum(xacml.StandardPolicy("v1").Encode()) {
		t.Fatal("conflict mutated the original anchor")
	}
}

func TestPolicyContractRejectsBadPayloads(t *testing.T) {
	e := newPolicyEnv(t)
	blob := xacml.StandardPolicy("v1").Encode()

	// Declared digest does not match the content.
	bad := PolicyUpdate{Version: "v1", Policy: blob, Digest: crypto.Sum([]byte("x"))}
	if _, err := e.call("pap", MethodPolicyUpdate, bad.Encode()); err == nil ||
		!strings.Contains(err.Error(), "digest mismatch") {
		t.Fatalf("digest mismatch err = %v", err)
	}
	// Unparseable policy bytes.
	junk := []byte(`{"not":"a policy"`)
	bad = PolicyUpdate{Version: "v1", Policy: junk, Digest: crypto.Sum(junk)}
	if _, err := e.call("pap", MethodPolicyUpdate, bad.Encode()); err == nil {
		t.Fatal("junk policy accepted")
	}
	// Version label disagreeing with the embedded set.
	bad = PolicyUpdate{Version: "v9", Policy: blob, Digest: crypto.Sum(blob)}
	if _, err := e.call("pap", MethodPolicyUpdate, bad.Encode()); err == nil ||
		!strings.Contains(err.Error(), "carries version") {
		t.Fatalf("version mismatch err = %v", err)
	}
	// Non-PAP caller.
	good := updateArgs("v1", 1)
	if _, err := e.call("li@tenant-1", MethodPolicyUpdate, good.Encode()); err == nil ||
		!strings.Contains(err.Error(), "may administer") {
		t.Fatalf("caller gate err = %v", err)
	}
}

func TestPolicyContractRollback(t *testing.T) {
	e := newPolicyEnv(t)
	if _, err := e.call("pap", MethodPolicyUpdate, updateArgs("v1", 1).Encode()); err != nil {
		t.Fatal(err)
	}
	e.onBlock()
	if _, err := e.call("pap", MethodPolicyUpdate, updateArgs("v2", 2).Encode()); err != nil {
		t.Fatal(err)
	}
	e.onBlock()
	if got := activeVersion(e.st); got != "v2" {
		t.Fatalf("active = %q, want v2", got)
	}
	pst := contract.Namespace(e.st, PolicyContractName)
	if deact, ok := ReadPolicyDeactivatedAt(pst, "v1"); !ok || deact != 2 {
		t.Fatalf("v1 deactivation = %d,%v", deact, ok)
	}

	// Rollback re-activates v1 without shipping the bytes again.
	enc := mustJSON(t, PolicyActivateArgs{Version: "v1", ActivateHeight: 3})
	if _, err := e.call("pap", MethodPolicyActivate, enc); err != nil {
		t.Fatal(err)
	}
	evs := e.onBlock()
	if len(evs) != 1 || evs[0].Type != EventPolicyActivated {
		t.Fatalf("rollback events = %v", eventTypes(evs))
	}
	if got := activeVersion(e.st); got != "v1" {
		t.Fatalf("active after rollback = %q", got)
	}
	if _, ok := ReadPolicyDeactivatedAt(pst, "v1"); ok {
		t.Fatal("re-activated version still marked deactivated")
	}
	if deact, ok := ReadPolicyDeactivatedAt(pst, "v2"); !ok || deact != 3 {
		t.Fatalf("v2 deactivation = %d,%v", deact, ok)
	}
	if hist := ReadPolicyHistory(pst); len(hist) != 3 {
		t.Fatalf("history length = %d, want 3", len(hist))
	}

	// Activating an unknown version fails.
	if _, err := e.call("pap", MethodPolicyActivate, mustJSON(t, PolicyActivateArgs{Version: "v9"})); err == nil {
		t.Fatal("unknown version activated")
	}
}

// TestPolicyContractReplayDeterminism applies the same transaction/block
// sequence to a fresh engine and demands bit-identical state — the property
// that lets a restarted node rebuild the policy lifecycle from the chain.
func TestPolicyContractReplayDeterminism(t *testing.T) {
	run := func() crypto.Digest {
		e := newPolicyEnv(t)
		e.call("pap", MethodPolicyUpdate, updateArgs("v1", 0).Encode())
		e.onBlock()
		e.call("pap", MethodPolicyUpdate, updateArgs("v2", 4).Encode())
		e.onBlock()
		e.call("pap", MethodPolicyUpdate, updateArgs("v2", 4).Encode()) // retry
		e.onBlock()
		e.onBlock() // height 4: v2 activates
		e.call("pap", MethodPolicyActivate, mustJSON(t, PolicyActivateArgs{Version: "v1", ActivateHeight: 5}))
		e.onBlock()
		if got := activeVersion(e.st); got != "v1" {
			t.Fatalf("active = %q, want v1", got)
		}
		return e.st.Digest()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("replay diverged: %s != %s", a.Short(), b.Short())
	}
}

// TestM6ConsultsPolicyContract proves the log-match M6 check reads the
// policy contract's chain-replicated anchor: a pdp.response claiming the
// active version passes, a superseded version passes only within the grace
// window, and a forged digest alerts.
func TestM6ConsultsPolicyContract(t *testing.T) {
	e := newPolicyEnv(t)
	if _, err := e.call("pap", MethodPolicyUpdate, updateArgs("v1", 0).Encode()); err != nil {
		t.Fatal(err)
	}
	e.onBlock() // v1 active at height 1
	v1 := xacml.StandardPolicy("v1")

	logPDPResp := func(reqID, version string, digest crypto.Digest) []contract.Event {
		rec := LogRecord{
			Kind: KindPDPResponse, ReqID: reqID, Tenant: "tenant-1", Agent: "agent",
			ReqDigest: crypto.Sum([]byte(reqID)), RespDigest: crypto.Sum([]byte(reqID + "resp")),
			DecisionTag:   DecisionTag(testKey, reqID, xacml.Permit),
			PolicyVersion: version, PolicyDigest: digest,
		}
		ctx := contract.CallCtx{Height: e.height, Caller: "li@tenant-1", TxID: crypto.Sum(rec.Encode())}
		evs, err := e.engine.Execute(ctx, e.st,
			contract.Call{Contract: ContractName, Method: MethodLog, Args: rec.Encode()})
		if err != nil {
			t.Fatalf("log: %v", err)
		}
		return evs
	}
	hasAlert := func(evs []contract.Event, at AlertType) bool {
		for _, ev := range evs {
			if ev.Type != EventAlert {
				continue
			}
			a, err := DecodeAlert(ev.Payload)
			if err == nil && a.Type == at {
				return true
			}
		}
		return false
	}

	// Active version with the anchored digest: clean.
	if evs := logPDPResp("r1", "v1", v1.Digest()); hasAlert(evs, AlertPolicyTampered) {
		t.Fatal("clean record alerted")
	}
	// Forged digest for the active version: M6 fires.
	if evs := logPDPResp("r2", "v1", crypto.Sum([]byte("forged"))); !hasAlert(evs, AlertPolicyTampered) {
		t.Fatal("forged digest not detected")
	}
	// Unanchored version: M6 fires.
	if evs := logPDPResp("r3", "v7", v1.Digest()); !hasAlert(evs, AlertPolicyTampered) {
		t.Fatal("unanchored version not detected")
	}

	// Flip to v2, then log a v1-claiming record inside the grace window
	// (Δ = 5 blocks): tolerated. Past the window: alert.
	if _, err := e.call("pap", MethodPolicyUpdate, updateArgs("v2", 0).Encode()); err != nil {
		t.Fatal(err)
	}
	e.onBlock() // v2 active, v1 deactivated at this height
	if evs := logPDPResp("r4", "v1", v1.Digest()); hasAlert(evs, AlertPolicyTampered) {
		t.Fatal("in-flight v1 record inside grace window alerted")
	}
	for i := 0; i < 6; i++ {
		e.onBlock()
	}
	if evs := logPDPResp("r5", "v1", v1.Digest()); !hasAlert(evs, AlertPolicyTampered) {
		t.Fatal("stale v1 record past grace window not detected")
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
