// Package federation models the FaaS cloud-federation substrate of the
// paper (Figure 1): clouds contributing sections of computing resources,
// tenants deployed on them, the infrastructure tenant owned by all
// federation members (hosting PDP, PRP/PAP and policy management), and
// tenant-edge PEPs intercepting all communications.
//
// The package provides the access-control data plane — PEPService at each
// tenant edge and PDPService in the infrastructure tenant, talking over the
// simulated federation network — with explicit probe hook points (where
// DRAMS agents attach) and tamper hook points (where the attack-injection
// framework models compromised components).
package federation

import (
	"errors"
	"fmt"
	"sort"

	"drams/internal/crypto"
)

// Cloud is one federation member platform.
type Cloud struct {
	Name string `json:"name"`
	// Section is the set of computing resources the cloud contributes
	// ("Section i" in Figure 1).
	Section string `json:"section"`
}

// Tenant is a virtual space of computing resources on a cloud.
type Tenant struct {
	Name  string `json:"name"`
	Cloud string `json:"cloud"`
	// Infrastructure marks the tenant owned by all federation clouds that
	// enables the FaaS functionality (hosts PDP/PRP).
	Infrastructure bool `json:"infrastructure"`
}

// Topology is the static description of a federation.
type Topology struct {
	Name    string   `json:"name"`
	Clouds  []Cloud  `json:"clouds"`
	Tenants []Tenant `json:"tenants"`
}

// Validation errors.
var (
	ErrNoInfrastructure = errors.New("federation: topology needs exactly one infrastructure tenant")
	ErrUnknownCloud     = errors.New("federation: tenant references unknown cloud")
	ErrDuplicateName    = errors.New("federation: duplicate name")
	ErrNoEdgeTenants    = errors.New("federation: topology needs at least one edge tenant")
)

// Validate checks structural invariants of the topology.
func (t *Topology) Validate() error {
	clouds := make(map[string]bool, len(t.Clouds))
	for _, c := range t.Clouds {
		if clouds[c.Name] {
			return fmt.Errorf("%w: cloud %q", ErrDuplicateName, c.Name)
		}
		clouds[c.Name] = true
	}
	names := make(map[string]bool, len(t.Tenants))
	infra := 0
	edges := 0
	for _, ten := range t.Tenants {
		if names[ten.Name] {
			return fmt.Errorf("%w: tenant %q", ErrDuplicateName, ten.Name)
		}
		names[ten.Name] = true
		if !clouds[ten.Cloud] {
			return fmt.Errorf("%w: tenant %q on cloud %q", ErrUnknownCloud, ten.Name, ten.Cloud)
		}
		if ten.Infrastructure {
			infra++
		} else {
			edges++
		}
	}
	if infra != 1 {
		return fmt.Errorf("%w: found %d", ErrNoInfrastructure, infra)
	}
	if edges == 0 {
		return ErrNoEdgeTenants
	}
	return nil
}

// InfrastructureTenant returns the infrastructure tenant.
func (t *Topology) InfrastructureTenant() (Tenant, error) {
	for _, ten := range t.Tenants {
		if ten.Infrastructure {
			return ten, nil
		}
	}
	return Tenant{}, ErrNoInfrastructure
}

// Tenant returns the named tenant.
func (t *Topology) Tenant(name string) (Tenant, bool) {
	for _, ten := range t.Tenants {
		if ten.Name == name {
			return ten, true
		}
	}
	return Tenant{}, false
}

// EdgeTenants returns the non-infrastructure tenants, sorted by name.
func (t *Topology) EdgeTenants() []Tenant {
	var out []Tenant
	for _, ten := range t.Tenants {
		if !ten.Infrastructure {
			out = append(out, ten)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// TenantsOnCloud returns the tenants hosted by a cloud, sorted by name.
func (t *Topology) TenantsOnCloud(cloud string) []Tenant {
	var out []Tenant
	for _, ten := range t.Tenants {
		if ten.Cloud == cloud {
			out = append(out, ten)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SimpleTopology builds a federation of n clouds, one edge tenant per
// cloud, plus the infrastructure tenant on the first cloud — the Figure 1
// shape generalised to n members.
func SimpleTopology(name string, nClouds int) *Topology {
	t := &Topology{Name: name}
	for i := 1; i <= nClouds; i++ {
		cloud := fmt.Sprintf("cloud-%d", i)
		t.Clouds = append(t.Clouds, Cloud{Name: cloud, Section: fmt.Sprintf("section-%d", i)})
		t.Tenants = append(t.Tenants, Tenant{Name: fmt.Sprintf("tenant-%d", i), Cloud: cloud})
	}
	t.Tenants = append(t.Tenants, Tenant{Name: "infrastructure", Cloud: "cloud-1", Infrastructure: true})
	return t
}

// PEPAddr returns the network address of a tenant's PEP.
func PEPAddr(tenant string) string { return "pep@" + tenant }

// PDPAddr is the network address of the federation PDP service.
const PDPAddr = "pdp@infrastructure"

// IdentitySeed derives the deterministic per-component identity seed every
// federation participant computes from the shared deployment seed, so that
// single-process deployments (drams.New) and multi-process daemons
// (cmd/drams-node) agree on the chain allowlist byte-for-byte.
func IdentitySeed(seed uint64, name string) [32]byte {
	d := crypto.SumAll([]byte(fmt.Sprintf("drams-id|%d|", seed)), []byte(name))
	return [32]byte(d)
}

// SharedKey derives the federation's shared symmetric LI key K from the
// deployment seed (paper §II; sealed in a TPM under the §III mitigation).
func SharedKey(seed uint64) crypto.Key {
	return crypto.DeriveKey(fmt.Sprintf("drams-K-%d", seed), "shared-li-key")
}
