package blockchain

import (
	"context"
	"fmt"
	"testing"
	"time"

	"drams/internal/netsim"
	"drams/internal/store"
)

// Mixed-format interop: stores written by pre-binary (JSON) builds must
// reopen, and JSON-wire nodes must interoperate with binary-codec peers in
// both directions — tx/block gossip and bc.getrange catch-up.

// TestJSONPersistedChainReopens reloads a store whose block values are the
// legacy JSON encodings (what a pre-binary build persisted), then keeps
// using it with binary incremental persistence — the store ends up holding
// both formats and still reloads.
func TestJSONPersistedChainReopens(t *testing.T) {
	src := buildTestChain(t, 5)
	alice := testIdentity(t, "alice", 1)
	kv := store.NewMemory()
	puts := map[string][]byte{persistHeadKey: persistHeadRecord(5)}
	for h := uint64(1); h <= 5; h++ {
		b, ok := src.BlockByHeight(h)
		if !ok {
			t.Fatalf("source chain lost height %d", h)
		}
		puts[persistBlockKey(h)] = EncodeBlockJSON(b)
	}
	if err := kv.Batch(puts); err != nil {
		t.Fatal(err)
	}

	dst := NewChain(testChainConfig(t, alice))
	n, err := dst.LoadFromStore(kv)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("applied %d blocks from JSON store, want 5", n)
	}
	if dst.StateDigest() != src.StateDigest() {
		t.Fatal("state reloaded from JSON-persisted blocks differs")
	}

	// Extend the reopened chain with the store attached: the new block is
	// persisted in the binary format alongside the JSON heights.
	dst.AttachStore(kv)
	tx, err := NewTransaction(alice, 6, putCall("k6", "v"))
	if err != nil {
		t.Fatal(err)
	}
	head, _ := dst.Head()
	if err := dst.AddBlock(mineChild(t, dst, head, tx)); err != nil {
		t.Fatal(err)
	}
	enc, err := kv.Get(persistBlockKey(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) == 0 || enc[0] != codecVersion {
		t.Fatal("extension block not persisted in the binary format")
	}

	mixed := NewChain(testChainConfig(t, alice))
	if n, err := mixed.LoadFromStore(kv); err != nil || n != 6 {
		t.Fatalf("mixed-format store reload: %d blocks, %v", n, err)
	}
	if mixed.StateDigest() != dst.StateDigest() {
		t.Fatal("mixed-format store reload diverged")
	}
}

// TestMixedWireGossipConverges runs a JSON-wire node and a binary-codec node
// in one federation: transactions submitted on each side must reach the
// other via gossip (each emits its own format; both decode either) and both
// chains must converge to one state.
func TestMixedWireGossipConverges(t *testing.T) {
	alice := testIdentity(t, "alice", 1)
	bob := testIdentity(t, "bob", 2)
	net := netsim.New(netsim.Config{BaseLatency: time.Millisecond, Seed: 42})
	defer net.Close()

	newPeer := func(name string, legacy bool) *Node {
		node, err := NewNode(NodeConfig{
			Name:               name,
			Chain:              testChainConfig(t, alice, bob),
			Network:            net,
			Mine:               true,
			EmptyBlockInterval: 15 * time.Millisecond,
			LegacyJSONWire:     legacy,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(node.Stop)
		node.Start()
		return node
	}
	jsonNode := newPeer("json-peer", true)
	binNode := newPeer("bin-peer", false)
	// Submit only once the bc.hello handshakes have linked the peers, so
	// the tx gossip actually crosses the format boundary.
	waitFor(t, 10*time.Second, func() bool {
		return len(jsonNode.discoveredPeers()) > 0 && len(binNode.discoveredPeers()) > 0
	}, "peers never discovered each other")

	txA, err := NewTransaction(alice, 1, putCall("from-json-peer", "a"))
	if err != nil {
		t.Fatal(err)
	}
	txB, err := NewTransaction(bob, 1, putCall("from-bin-peer", "b"))
	if err != nil {
		t.Fatal(err)
	}
	if err := jsonNode.SubmitTx(txA); err != nil {
		t.Fatal(err)
	}
	if err := binNode.SubmitTx(txB); err != nil {
		t.Fatal(err)
	}

	// Both txs must execute on both replicas, whichever side mined them.
	for _, node := range []*Node{jsonNode, binNode} {
		for _, tx := range []Transaction{txA, txB} {
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
			if _, err := node.WaitForReceipt(ctx, tx.ID(), 1); err != nil {
				cancel()
				t.Fatalf("%s never saw tx %s: %v", node.Name(), tx.ID().Short(), err)
			}
			cancel()
		}
	}
	waitFor(t, 20*time.Second, func() bool {
		ja, jh := jsonNode.Chain().Head()
		ba, bh := binNode.Chain().Head()
		return jh == bh && ja == ba
	}, "mixed-format peers never converged on one head")
	if jsonNode.Chain().StateDigest() != binNode.Chain().StateDigest() {
		t.Fatal("mixed-format peers diverged in state")
	}
}

// TestGetRangeInteropAcrossFormats catches a late joiner up from a peer of
// the other wire format, in both directions: a binary client asks a JSON
// server (which ignores the codec hint and answers JSON) and a JSON-wire
// client asks a binary server (which honours the hint per request).
func TestGetRangeInteropAcrossFormats(t *testing.T) {
	for _, tc := range []struct {
		name                       string
		serverLegacy, clientLegacy bool
	}{
		{"json-server_binary-client", true, false},
		{"binary-server_json-client", false, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			alice := testIdentity(t, "alice", 1)
			net := netsim.New(netsim.Config{BaseLatency: time.Millisecond, Seed: 7})
			defer net.Close()
			server, err := NewNode(NodeConfig{
				Name:           "server",
				Chain:          testChainConfig(t, alice),
				Network:        net,
				Mine:           true,
				LegacyJSONWire: tc.serverLegacy,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer server.Stop()
			server.Start()
			for i := 1; i <= 3; i++ {
				tx, err := NewTransaction(alice, uint64(i), putCall(fmt.Sprintf("k%d", i), "v"))
				if err != nil {
					t.Fatal(err)
				}
				if err := server.SubmitTx(tx); err != nil {
					t.Fatal(err)
				}
				ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
				if _, err := server.WaitForReceipt(ctx, tx.ID(), 1); err != nil {
					cancel()
					t.Fatal(err)
				}
				cancel()
			}

			late, err := NewNode(NodeConfig{
				Name:           "late",
				Chain:          testChainConfig(t, alice),
				Network:        net,
				LegacyJSONWire: tc.clientLegacy,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer late.Stop()
			late.Start()
			if err := late.SyncFrom("server"); err != nil {
				t.Fatal(err)
			}
			if late.Chain().StateDigest() != server.Chain().StateDigest() {
				t.Fatal("cross-format catch-up diverged")
			}
			if late.Chain().Height() != server.Chain().Height() {
				t.Fatalf("heights differ: late %d, server %d",
					late.Chain().Height(), server.Chain().Height())
			}
		})
	}
}
