// Package clean is the zero-finding twin: a component with no simulator
// dependency.
package clean

// Component is a placeholder.
type Component struct{}
