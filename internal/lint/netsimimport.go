package lint

import "fmt"

// NetsimImport enforces the PR 3 transport-abstraction boundary: after the
// pluggable transport layer landed, components compile against
// internal/transport interfaces only, and the in-process simulator is
// reachable solely from _test.go files, the simulator itself, and the
// designated wiring layers that assemble deployments (root package, cmd/,
// examples/, and the bench/attack/load harnesses).
type NetsimImport struct {
	// Target is the module-relative path of the simulator package.
	Target string
	// Allowed are module-relative package patterns permitted to import it
	// from non-test files ("" is the module root, "cmd/..." a subtree).
	Allowed []string
}

// NewNetsimImport returns the analyzer with the repo's designated wiring
// allowlist.
func NewNetsimImport() *NetsimImport {
	return &NetsimImport{
		Target: "internal/netsim",
		Allowed: []string{
			"",        // root wiring layer (drams.Open assembles netsim fleets)
			"cmd/...", // binaries choose their transport
			"examples/...",
			"internal/experiment", // bench harness builds simulated fleets
			"internal/attack",     // chaos campaigns run against netsim deployments
			"internal/loadgen",    // the netsim load target
		},
	}
}

func (a *NetsimImport) Name() string { return "netsimimport" }

func (a *NetsimImport) Doc() string {
	return "no internal/netsim import outside _test.go files, the simulator, and designated wiring packages (PR 3)"
}

func (a *NetsimImport) Run(p *Pass) {
	rel := p.PkgRel()
	if rel == a.Target || matchAnyPath(rel, a.Allowed) {
		return
	}
	target := p.Graph.Module + "/" + a.Target
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		for _, spec := range f.Imports {
			if importPathOf(spec) == target {
				p.Reportf(spec.Pos(), "package %s imports %s: components must compile against internal/transport interfaces; only tests and designated wiring may use the simulator",
					fmt.Sprintf("%q", p.Pkg.ImportPath), target)
			}
		}
	}
}
